"""CLI for the benchmarks: ``python -m repro.bench --scale 200 --json``.

Two modes:

* default — the scan benchmark.  Writes ``BENCH_scan.json`` (or
  ``--out``) and exits non-zero when any concurrent run's per-domain
  categorization diverges from the sequential baseline.  ``--shards``
  adds the cluster scaling ladder, ``--failover`` the shard-failover
  drill (a seeded victim crash mid-scan), and ``--render-cache`` the
  rendered-response wire-cache A/B ladder (cache off vs on, byte-
  identical records and Figure 1/2 aggregates, wall-clock speedup
  floor), all under the same identity gate;
* ``--serve`` — the serving benchmark.  Replays the five load scenarios
  (steady, flash crowd, stampede, outage+recovery, overload) through a
  resilient frontend once per retry-jitter seed, then the
  ``shard-outage`` cluster drill (its ``failover`` section), writes
  ``BENCH_serve.json``, and exits non-zero when phase reports are not
  byte-identical across seeds or the degradation/failover contracts
  fail.

CI runs both on every PR (bench-smoke / serve-bench-smoke gates).
"""

from __future__ import annotations

import argparse
import sys

from . import DEFAULT_SEED, bench_report, write_report


def _serve_main(args: argparse.Namespace) -> int:
    from ..load import (
        DEFAULT_JITTER_SEEDS,
        render_phase_table,
        serve_bench_report,
        write_serve_report,
    )

    seeds = tuple(
        int(seed) for seed in (args.serve_seeds or "").split(",") if seed
    ) or DEFAULT_JITTER_SEEDS
    report = serve_bench_report(
        scale=args.serve_scale,
        workers=args.serve_workers,
        jitter_seeds=seeds,
        target_domains=args.scale[0] if args.scale else 2000,
    )
    out = args.out if args.out != "BENCH_scan.json" else "BENCH_serve.json"
    write_serve_report(report, out)

    failover = report.get("failover")
    if args.json:
        import json

        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(render_phase_table(report["scenarios"]))
        print(
            f"{report['queries_per_seed']} queries/seed over seeds "
            f"{report['config']['jitter_seeds']}, wall {report['wall_s']}s"
        )
        for row in report["contract"]:
            print(f"  [{'ok' if row['ok'] else 'FAIL'}] {row['check']}: {row['detail']}")
        if failover is not None:
            print(
                f"failover drill ({failover['scenario']}): "
                f"{failover['queries_per_seed']} queries/seed, "
                f"wall {failover['wall_s']}s"
            )
            for row in failover["contract"]:
                print(
                    f"  [{'ok' if row['ok'] else 'FAIL'}] "
                    f"{row['check']}: {row['detail']}"
                )
        print(f"report written to {out}")

    failed = False
    if not report["deterministic"]:
        if report["comparison_seeds"] < 1:
            print(
                "FAIL: determinism gate needs at least two retry-jitter "
                "seeds to compare (got "
                f"{len(report['config']['jitter_seeds'])})",
                file=sys.stderr,
            )
        else:
            print(
                "FAIL: phase reports differ across retry-jitter seeds "
                f"{report['mismatched_seeds']}",
                file=sys.stderr,
            )
        failed = True
    if not report["contract_ok"]:
        print("FAIL: degradation contract violated", file=sys.stderr)
        failed = True
    if failover is not None:
        if not failover["deterministic"]:
            print(
                "FAIL: failover drill reports differ across retry-jitter "
                f"seeds {failover['mismatched_seeds']}",
                file=sys.stderr,
            )
            failed = True
        if not failover["contract_ok"]:
            print("FAIL: shard-failover contract violated", file=sys.stderr)
            failed = True
    return 1 if failed else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Sequential-vs-concurrent scan benchmark over seeded populations.",
    )
    parser.add_argument(
        "--serve",
        action="store_true",
        help="run the serving (load-scenario) benchmark instead of the scan benchmark",
    )
    parser.add_argument(
        "--serve-scale",
        type=float,
        default=1.0,
        metavar="F",
        help="client-population multiplier for --serve (default: 1.0)",
    )
    parser.add_argument(
        "--serve-workers",
        type=int,
        default=8,
        metavar="N",
        help="lane count for --serve (default: 8)",
    )
    parser.add_argument(
        "--serve-seeds",
        metavar="S[,S...]",
        help="comma-separated retry-jitter seeds for --serve (default: 1,20230524)",
    )
    parser.add_argument(
        "--scale",
        action="append",
        type=int,
        metavar="N",
        help="target domain count (repeatable; default: 1000)",
    )
    parser.add_argument(
        "--workers",
        action="append",
        metavar="W[,W...]",
        help=(
            "comma-separated lane counts, paired positionally with each "
            "--scale (the last value repeats; default: 1,8,32)"
        ),
    )
    parser.add_argument(
        "--shards",
        metavar="S[,S...]",
        help=(
            "comma-separated resolver-cluster shard counts; adds a "
            "shard-count scaling section (e.g. --shards 1,2,8) whose "
            "categorization identity also gates the exit code"
        ),
    )
    parser.add_argument(
        "--failover",
        action="store_true",
        help=(
            "add the shard-failover drill section: crash a seeded "
            "victim shard mid-scan and require ejection, zero "
            "datagrams while ejected, probe rejoin, restored routing, "
            "and byte-identical categorization vs the fault-free "
            "baseline (gates the exit code)"
        ),
    )
    parser.add_argument(
        "--render-cache",
        action="store_true",
        help=(
            "add the rendered-response wire-cache A/B ladder: each "
            "worker rung scans cache-off vs cache-on at both "
            "retry-jitter seeds and must agree byte-for-byte on every "
            "per-domain categorization and the Figure 1/2 aggregates; "
            "the wall-clock speedup floor is enforced at 1000+ domains "
            "(gates the exit code)"
        ),
    )
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument(
        "--out", default="BENCH_scan.json", help="report path (default: BENCH_scan.json)"
    )
    parser.add_argument(
        "--json", action="store_true", help="print the report to stdout as JSON"
    )
    args = parser.parse_args(argv)

    if args.serve:
        return _serve_main(args)

    scales = args.scale or [1000]
    workers_specs = [
        [int(w) for w in spec.split(",") if w] for spec in (args.workers or ["1,8,32"])
    ]
    scale_specs = [
        (scale, workers_specs[min(index, len(workers_specs) - 1)])
        for index, scale in enumerate(scales)
    ]

    shard_counts = None
    if args.shards:
        shard_counts = [int(s) for s in args.shards.split(",") if s]

    report = bench_report(
        scale_specs,
        seed=args.seed,
        shard_counts=shard_counts,
        failover=args.failover,
        render_cache=args.render_cache,
    )
    write_report(report, args.out)

    if args.json:
        import json

        print(json.dumps(report, indent=2))
    else:
        for pop in report["populations"]:
            base = pop["runs"][0]
            print(
                f"scale {pop['target_domains']}: {pop['actual_domains']} domains, "
                f"sequential {base['domains_per_virtual_s']}/vs"
            )
            for run in pop["runs"][1:]:
                print(
                    f"  {run['workers']:>3} workers: {run['domains_per_virtual_s']}/vs "
                    f"({pop['speedup_vs_sequential'][str(run['workers'])]}x), "
                    f"coalesced {run['coalesced']}, "
                    f"cache hit {run['cache_hit_rate']:.1%}"
                )
        if "shard_scaling" in report:
            section = report["shard_scaling"]
            print(
                f"shard scaling at {section['target_domains']} domains, "
                f"{section['workers']} workers:"
            )
            for run in section["runs"]:
                cluster = run.get("cluster") or {}
                extra = (
                    f", imbalance {cluster['imbalance']}, "
                    f"l2 hits {cluster['l2_hits']}"
                    if cluster
                    else ""
                )
                print(
                    f"  {run['shards']:>3} shards: "
                    f"{run['domains_per_virtual_s']}/vs, "
                    f"{run['messages']} messages{extra}"
                )
        if "failover" in report:
            section = report["failover"]
            print(
                f"shard-failover drill at {section['target_domains']} "
                f"domains, {section['shards']} shards, victim "
                f"{section['facts']['victim']}:"
            )
            for row in section["contract"]:
                print(
                    f"  [{'ok' if row['ok'] else 'FAIL'}] "
                    f"{row['check']}: {row['detail']}"
                )
        if "render_cache" in report:
            section = report["render_cache"]
            print(
                f"render-cache A/B at {section['target_domains']} domains "
                f"(batch {section['batch']}, seeds {section['jitter_seeds']}):"
            )
            for rung in section["rungs"]:
                render = rung.get("render_cache") or {}
                print(
                    f"  seed {rung['jitter_seed']:>8} "
                    f"{rung['workers']:>3} workers: "
                    f"off {rung['wall_off_s']}s on {rung['wall_on_s']}s "
                    f"({rung['speedup']}x), "
                    f"identical={rung['identical']}, "
                    f"figures={rung['figures_identical']}, "
                    f"stores {render.get('stores', 0)}, "
                    f"hits {render.get('hits', 0)}"
                )
            floor = section["speedup_floor"]
            enforced = "enforced" if section["speedup_enforced"] else "advisory"
            print(
                f"  best speedup {section['best_speedup']}x "
                f"(floor {floor}x, {enforced}): "
                f"{'ok' if section['speedup_ok'] else 'BELOW FLOOR'}"
            )
        print(f"report written to {args.out}")

    failed = False
    if not report["all_identical"]:
        sections = list(report["populations"])
        if "shard_scaling" in report:
            sections.append(report["shard_scaling"])
        if "failover" in report:
            sections.append(report["failover"])
        if "render_cache" in report:
            sections.append(report["render_cache"])
        if any(s["comparison_runs"] < 1 for s in sections):
            print(
                "FAIL: identity gate ran zero baseline comparisons "
                "(empty --workers/--shards ladder)",
                file=sys.stderr,
            )
        else:
            print(
                "FAIL: concurrent categorization diverges from the sequential baseline",
                file=sys.stderr,
            )
        failed = True
    if "failover" in report and not report["failover"]["failover_ok"]:
        print(
            "FAIL: shard-failover drill contract violated "
            "(or not byte-identical across jitter seeds)",
            file=sys.stderr,
        )
        failed = True
    if "render_cache" in report and not report["render_cache"]["render_cache_ok"]:
        print(
            "FAIL: render-cache A/B gate violated (categorization/figure "
            "divergence, or wall-clock speedup below the enforced floor)",
            file=sys.stderr,
        )
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
