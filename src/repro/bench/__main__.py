"""CLI for the scan benchmark: ``python -m repro.bench --scale 200 --json``.

Writes ``BENCH_scan.json`` (or ``--out``) and exits non-zero when any
concurrent run's per-domain categorization diverges from the sequential
baseline — CI runs this on every PR as the bench-smoke gate.
"""

from __future__ import annotations

import argparse
import sys

from . import DEFAULT_SEED, bench_report, write_report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Sequential-vs-concurrent scan benchmark over seeded populations.",
    )
    parser.add_argument(
        "--scale",
        action="append",
        type=int,
        metavar="N",
        help="target domain count (repeatable; default: 1000)",
    )
    parser.add_argument(
        "--workers",
        action="append",
        metavar="W[,W...]",
        help=(
            "comma-separated lane counts, paired positionally with each "
            "--scale (the last value repeats; default: 1,8,32)"
        ),
    )
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument(
        "--out", default="BENCH_scan.json", help="report path (default: BENCH_scan.json)"
    )
    parser.add_argument(
        "--json", action="store_true", help="print the report to stdout as JSON"
    )
    args = parser.parse_args(argv)

    scales = args.scale or [1000]
    workers_specs = [
        [int(w) for w in spec.split(",") if w] for spec in (args.workers or ["1,8,32"])
    ]
    scale_specs = [
        (scale, workers_specs[min(index, len(workers_specs) - 1)])
        for index, scale in enumerate(scales)
    ]

    report = bench_report(scale_specs, seed=args.seed)
    write_report(report, args.out)

    if args.json:
        import json

        print(json.dumps(report, indent=2))
    else:
        for pop in report["populations"]:
            base = pop["runs"][0]
            print(
                f"scale {pop['target_domains']}: {pop['actual_domains']} domains, "
                f"sequential {base['domains_per_virtual_s']}/vs"
            )
            for run in pop["runs"][1:]:
                print(
                    f"  {run['workers']:>3} workers: {run['domains_per_virtual_s']}/vs "
                    f"({pop['speedup_vs_sequential'][str(run['workers'])]}x), "
                    f"coalesced {run['coalesced']}, "
                    f"cache hit {run['cache_hit_rate']:.1%}"
                )
        print(f"report written to {args.out}")

    if not report["all_identical"]:
        print(
            "FAIL: concurrent categorization diverges from the sequential baseline",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
