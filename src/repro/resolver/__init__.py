"""Recursive resolution: engine, cache, vendor EDE profiles, stub client."""

from .cache import CacheConfig, CacheStats, ResolverCache
from .ede_policy import EdeEmission, EdePolicy
from .error_reporting import (
    REPORT_CHANNEL,
    DecodedReport,
    ErrorReporter,
    ReportChannelOption,
    ReportRecord,
    ReportingAgent,
    decode_report_qname,
    encode_report_qname,
)
from .forwarder import ForwarderStats, ForwardingResolver
from .iterative import (
    EngineConfig,
    EngineStats,
    IterationResult,
    IterativeEngine,
    QueryBudget,
)
from .server_stats import ServerSelectionConfig, ServerStat, ServerStatsBook
from .public import (
    TEN_PUBLIC_RESOLVERS,
    SupportProbe,
    probe_ede_support,
    select_ede_capable,
)
from .policy import (
    ACTION_EDE,
    LocalPolicy,
    PolicyAction,
    PolicyDecision,
    PolicyRule,
    spamhaus_style_feed,
)
from .profiles import (
    ALL_PROFILES,
    BIND,
    CLOUDFLARE,
    KNOT,
    OPENDNS,
    POWERDNS,
    PROFILES_BY_NAME,
    QUAD9,
    UNBOUND,
    ResolverProfile,
    get_profile,
)
from .recursive import RecursiveResolver, ResolverStats
from .stub import StubAnswer, StubResolver
from .transfer import TransferError, axfr, axfr_domains

__all__ = [
    "ACTION_EDE",
    "ALL_PROFILES",
    "BIND",
    "CLOUDFLARE",
    "CacheConfig",
    "CacheStats",
    "DecodedReport",
    "EdeEmission",
    "EdePolicy",
    "EngineConfig",
    "EngineStats",
    "QueryBudget",
    "ServerSelectionConfig",
    "ServerStat",
    "ServerStatsBook",
    "ErrorReporter",
    "ForwarderStats",
    "ForwardingResolver",
    "LocalPolicy",
    "SupportProbe",
    "TEN_PUBLIC_RESOLVERS",
    "probe_ede_support",
    "select_ede_capable",
    "PolicyAction",
    "PolicyDecision",
    "PolicyRule",
    "REPORT_CHANNEL",
    "ReportChannelOption",
    "ReportRecord",
    "ReportingAgent",
    "decode_report_qname",
    "encode_report_qname",
    "spamhaus_style_feed",
    "IterationResult",
    "IterativeEngine",
    "KNOT",
    "OPENDNS",
    "POWERDNS",
    "PROFILES_BY_NAME",
    "QUAD9",
    "RecursiveResolver",
    "ResolverCache",
    "ResolverProfile",
    "ResolverStats",
    "StubAnswer",
    "StubResolver",
    "TransferError",
    "UNBOUND",
    "axfr",
    "axfr_domains",
    "get_profile",
]
