"""The client-facing recursive resolver.

Ties together the iterative engine, the cache, the DNSSEC validator,
and a vendor EDE policy.  One instance per vendor profile; all
instances share the same fabric, so a testbed query plan can ask all
seven "resolvers" about the same misconfigured domain exactly like the
paper does.
"""

from __future__ import annotations

import dataclasses
import threading
from dataclasses import dataclass

from ..dns.dnssec_records import DS
from ..dns.message import Message
from ..dns.name import Name
from ..dns.rcode import Rcode
from ..dns.rrset import RRset
from ..dns.types import RdataType
from ..dnssec.trace import (
    EventRecord,
    FailureReason,
    ResolutionEvent,
    ResolutionOutcome,
    Role,
    ValidationState,
    ValidationTrace,
)
from ..dnssec.validator import FetchResult, Validator
from ..net.clock import Clock
from ..net.fabric import NetworkFabric
from ..dns.render import RenderedWireCache, wire_key
from ..obs import NULL_OBS, Observability, TraceEventKind
from .cache import STALE_TTL, CacheConfig, ResolverCache
from .ede_policy import EdePolicy
from .iterative import EngineConfig, IterativeEngine
from .profiles import ResolverProfile
from .resilience import DeadlineBudget, RefreshQueue, ResilienceConfig


@dataclass
class ResolverStats:
    queries: int = 0
    servfail: int = 0
    nxdomain: int = 0
    with_ede: int = 0
    validated_secure: int = 0
    validated_bogus: int = 0
    #: Resolutions aborted by the per-resolution query budget
    #: (anti-amplification guard in the iterative engine).
    budget_exhausted: int = 0
    #: Client resolutions that parked on another lane's identical
    #: in-flight resolution instead of launching their own (the
    #: single-flight pattern; only possible under concurrent lanes).
    coalesced: int = 0
    #: Infrastructure fetches (DNSKEYs, DS sets, referral glue) that
    #: piggybacked on an identical in-flight fetch from another lane.
    coalesced_infra: int = 0
    #: Infrastructure-record cache outcomes (TLD referrals, DNSKEYs
    #: shared across resolutions via the infra cache).
    infra_hits: int = 0
    infra_misses: int = 0
    #: Degraded answers served from the stale cache (RFC 8767): positive
    #: (EDE 3 under profiles that map it) and negative (EDE 19).
    stale_served: int = 0
    stale_nxdomain_served: int = 0
    #: Client resolutions that hit the deadline budget before finishing.
    deadline_hits: int = 0
    #: Stale-while-revalidate: background refreshes attempted/completed.
    refreshes: int = 0
    refreshed_ok: int = 0
    #: Rendered-wire cache outcomes on the datagram path: hits served
    #: straight from patched bytes (zero Message work — these do NOT
    #: also count as answer-cache hits), and responses stored.
    render_hits: int = 0
    render_stores: int = 0


@dataclass
class _InfraEntry:
    result: FetchResult
    expires_at: float


class _Flight:
    """Marker for one in-flight upstream fetch (single-flight dedup).

    ``done`` flips in a ``finally`` with the lane token held, so waiters
    parked on it via :meth:`Clock.wait_virtual` observe a consistent
    final state — including when the owner unwinds on an exception.
    """

    __slots__ = ("done", "outcome")

    def __init__(self):
        self.done = False
        self.outcome = None


class RecursiveResolver:
    """A validating, caching recursive resolver with one vendor's EDE policy."""

    def __init__(
        self,
        fabric: NetworkFabric,
        profile: ResolverProfile,
        root_hints: list[str],
        trust_anchors: list[DS] | None = None,
        engine_config: EngineConfig | None = None,
        source_ip: str | None = None,
        validate: bool = True,
        local_policy: "LocalPolicy | None" = None,
        error_reporting: bool = False,
        resilience: ResilienceConfig | None = None,
        cache_config: CacheConfig | None = None,
        obs: Observability | None = None,
        l2: "SharedL2Cache | None" = None,
        render_cache: bool = False,
    ):
        self.fabric = fabric
        self.profile = profile
        self.clock: Clock = fabric.clock
        self.obs = obs or NULL_OBS
        #: Metric/trace label: the short vendor key ("bind", "unbound", ...)
        #: — the same key ``run_matrix`` files results under.
        self._obs_profile = profile.policy.name
        self._m_queries = self.obs.counter("repro_resolver_queries_total")
        self._m_responses = self.obs.counter("repro_resolver_responses_total")
        self._m_ede = self.obs.counter("repro_resolver_ede_total")
        self._m_cache_hits = self.obs.counter("repro_resolver_cache_hits_total")
        self._m_render = self.obs.counter("repro_resolver_render_hits_total")
        self._m_stale = self.obs.counter("repro_resolver_stale_served_total")
        self._m_coalesced = self.obs.counter("repro_resolver_coalesced_total")
        self._m_infra = self.obs.counter("repro_resolver_infra_fetch_total")
        self._m_validation = self.obs.counter("repro_resolver_validation_total")
        self._m_latency = self.obs.histogram("repro_resolver_resolve_virtual_seconds")
        engine_config = engine_config or EngineConfig()
        if source_ip:
            engine_config = dataclasses.replace(engine_config, source_ip=source_ip)
        elif profile.service_address:
            engine_config = dataclasses.replace(
                engine_config, source_ip=profile.service_address
            )
        if resilience is not None and engine_config.breaker is None:
            engine_config = dataclasses.replace(
                engine_config, breaker=resilience.breaker
            )
        self.engine = IterativeEngine(fabric, root_hints, engine_config, obs=self.obs)
        #: Cache policy resolution: an explicit ``cache_config`` wins;
        #: otherwise the profile's transcription of the vendor's cache
        #: behaviour applies (serving front ends pass
        #: :func:`repro.resolver.cache.default_cache_config`).
        self.cache = ResolverCache(self.clock, cache_config or profile.cache)
        self.resilience = resilience
        self._refresh: RefreshQueue | None = None
        if resilience is not None:
            self._refresh = RefreshQueue(
                self.clock,
                capacity=resilience.refresh_capacity,
                retry_interval=resilience.refresh_retry_interval,
            )
        #: Reentrancy guard: a background refresh must not enqueue more
        #: refresh work (or recurse into run_refreshes) when it, too,
        #: can only come up with a stale answer.
        self._refreshing = False
        self.validate_enabled = validate
        validator_config = dataclasses.replace(
            profile.validator, trust_anchors=list(trust_anchors or [])
        )
        self.validator = Validator(validator_config, _ValidatorSource(self))
        self.policy: EdePolicy = profile.policy
        self.local_policy = local_policy
        self.reporter = None
        if error_reporting:
            from .error_reporting import ErrorReporter

            self.reporter = ErrorReporter(self.clock)
        self.stats = ResolverStats()
        #: Rendered-response wire cache for the datagram path (see
        #: :mod:`repro.dns.render`): a repeat wire query whose answer is
        #: still covered by the answer cache is served from stored bytes
        #: with only the ID rewritten and answer TTLs re-derived from
        #: the *same* fractional expiry ``get_rrset`` decrements against.
        #: Off (None) by default — the seed byte path.
        self.render_cache = RenderedWireCache(clock=self.clock) if render_cache else None
        #: Per-lane render plan: what kind of answer-cache hit produced
        #: the response being encoded, and the entry's fractional expiry.
        #: Only responses derived from a cache hit are wire-cacheable —
        #: every other path mutates state (stats, refresh queues) or
        #: depends on upstream work.
        self._render_tls = threading.local()
        self._infra_cache: dict[tuple[Name, Name, int], _InfraEntry] = {}
        self._infra_ttl = 300.0
        #: Optional cluster-shared L2 tier for infra fetch results (see
        #: :class:`repro.cluster.SharedL2Cache`): consulted read-through
        #: on an L1 miss, published to on every fresh fetch.  None when
        #: this resolver runs standalone — the seed behaviour.
        self._l2 = l2
        #: Per-lane (thread-local) event sink: a validator fetch mid-way
        #: through lane A's resolution must not leak events into lane
        #: B's concurrently running resolution.
        self._events_tls = threading.local()
        #: Per-lane deadline budget, so validator fetches triggered from
        #: inside a resolution inherit the client's remaining patience.
        self._deadline_tls = threading.local()
        #: Single-flight registries (key -> _Flight).  Mutated only with
        #: the lane token held; on the sequential path a key can never
        #: be observed in flight, so these are no-ops there.
        self._client_flights: dict[tuple[Name, int, bool], _Flight] = {}
        self._infra_flights: dict[tuple[Name, Name, int], _Flight] = {}

    @property
    def server_stats(self):
        """The engine's per-server quality book (SRTT, lameness)."""
        return self.engine.server_stats

    # -- public API ---------------------------------------------------------------

    def resolve(
        self,
        qname: Name | str,
        rdtype: RdataType | str = RdataType.A,
        *,
        want_dnssec: bool = False,
        checking_disabled: bool = False,
    ) -> Message:
        """Resolve like a stub client would ask us to; returns the full
        response message including any EDE options the profile emits."""
        query = Message.make_query(
            qname, rdtype, want_dnssec=want_dnssec, recursion_desired=True,
            rng=self.engine.rng,
        )
        query.cd = checking_disabled
        return self.handle_query(query)

    def handle_query(self, query: Message, source: str = "") -> Message:
        if not self.obs.enabled:
            return self._handle_query(query, source)
        question = query.question[0]
        self._m_queries.labels(profile=self._obs_profile).inc()
        started = self.clock.now()
        trace = self.obs.begin_trace(
            str(question.name), str(question.rdtype), self._obs_profile
        )
        try:
            response = self._handle_query(query, source)
            self._observe_response(trace, response, started)
            return response
        finally:
            self.obs.end_trace(trace)

    def _observe_response(self, trace, response: Message, started: float) -> None:
        """Metrics + trace tail for one finished client response."""
        label = self._obs_profile
        self._m_responses.labels(
            profile=label, rcode=Rcode(response.rcode).name
        ).inc()
        for option in response.extended_errors:
            self._m_ede.labels(profile=label, code=str(int(option.info_code))).inc()
        self._m_latency.labels(profile=label).observe(self.clock.now() - started)
        if trace is None:
            return
        for option in response.extended_errors:
            self.obs.trace_event(
                TraceEventKind.EDE,
                code=int(option.info_code),
                extra_text=option.extra_text,
            )
        end_attrs: dict = {
            "rcode": int(response.rcode),
            "answers": len(response.answer),
        }
        if any(
            str(event.attrs.get("event", "")).startswith("STALE_")
            for event in trace.events_of(TraceEventKind.EVENT)
        ):
            end_attrs["stale"] = True
        if trace.events_of(TraceEventKind.CACHE_HIT):
            end_attrs["from_cache"] = True
        self.obs.trace_event(TraceEventKind.END, **end_attrs)

    def _handle_query(self, query: Message, source: str = "") -> Message:
        self.stats.queries += 1
        question = query.question[0]
        qname, rdtype = question.name, question.rdtype
        if self.local_policy is not None:
            decision = self.local_policy.evaluate(qname)
            if decision is not None:
                return self._apply_local_policy(query, qname, rdtype, decision)
        deadline: DeadlineBudget | None = None
        if self.resilience is not None and self.resilience.client_deadline > 0:
            deadline = DeadlineBudget.after(
                self.clock, self.resilience.client_deadline
            )
        outcome = self._resolve_outcome(
            qname, rdtype, checking_disabled=query.cd, deadline=deadline
        )
        response = self._build_response(query, outcome)
        if self.reporter is not None and response.ede_codes:
            self._report_errors(qname, rdtype, response.ede_codes)
        return response

    def _report_errors(self, qname: Name, rdtype, ede_codes) -> None:
        """RFC 9567: tell the zone's monitoring agent about the failure."""
        agent = self.engine.report_channel_for(qname)
        if agent is None or qname.is_subdomain_of(agent):
            return  # no channel, or we would report about the report
        for info_code in ede_codes:
            if not self.reporter.should_report(qname, rdtype, info_code, agent):
                continue
            report = self.reporter.build_report_query(qname, rdtype, info_code, agent)
            events: list[EventRecord] = []
            result = self.engine.resolve(
                report.question[0].name, RdataType.TXT, events
            )
            if result.ok:
                self.reporter.stats.reports_sent += 1
            else:
                self.reporter.stats.failed += 1

    def _apply_local_policy(self, query: Message, qname: Name, rdtype, decision) -> Message:
        """Synthesize the RPZ-style answer local policy demands."""
        from ..dns.rdata import A, AAAA
        from .policy import ACTION_EDE, PolicyAction

        response = query.make_response()
        response.rcode = decision.rcode
        if decision.action is PolicyAction.FORGE and rdtype in (
            RdataType.A, RdataType.AAAA,
        ):
            forged = decision.rule.forged_address
            rdata = AAAA(address=forged) if ":" in forged else A(address=forged)
            if (rdtype == RdataType.A) == (":" not in forged):
                response.answer.append(RRset.of(qname, rdtype, rdata, ttl=30))
        if query.edns is not None:
            emission = self.policy.policy_emission(
                ACTION_EDE[decision.action], decision.rule.reason
            )
            if emission is not None:
                response.add_ede(emission.code, emission.extra_text)
                self.stats.with_ede += 1
        return response

    # -- fabric endpoint protocol (so a resolver can itself be hosted) ----------------

    def handle_datagram(self, wire: bytes, source: str) -> bytes | None:
        key = self.render_serve_key(wire)
        if key is not None:
            served = self.render_serve(key, wire)
            if served is not None:
                return served
        try:
            query = Message.from_wire(wire)
        except Exception:
            response = Message(rcode=Rcode.FORMERR, qr=True)
            return response.to_wire()
        self.render_reset()
        encoded = self.handle_query(query, source).to_wire()
        if key is not None:
            self.render_store(key, encoded)
        return encoded

    # -- rendered-wire cache hooks (shared with the resilient frontend) ---------------

    def render_serve_key(self, wire: bytes) -> bytes | None:
        """The render-cache key for an incoming wire, or None when the
        cache is off or the datagram is too short to be a query."""
        if self.render_cache is None:
            return None
        return wire_key(wire)

    def render_serve(self, key: bytes, wire: bytes) -> bytes | None:
        """A patched cached response, or None.  A hit counts as one
        served query and one render hit — *not* an answer-cache hit
        (the answer cache was never consulted), so cluster aggregates
        keep counting each client query exactly once."""
        served = self.render_cache.serve(key, wire)
        if served is None:
            return None
        self.stats.queries += 1
        self.stats.render_hits += 1
        if self.obs.enabled:
            self._m_render.labels(profile=self._obs_profile).inc()
        return served

    def render_reset(self) -> None:
        """Clear the per-lane render plan before handling one datagram."""
        if self.render_cache is not None:
            self._render_tls.plan = None

    def _render_note(self, kind: str, expires_at: float | None) -> None:
        """Record that the outcome being built came from a cache hit."""
        if self.render_cache is not None and expires_at is not None:
            self._render_tls.plan = (kind, expires_at)

    def render_store(self, key: bytes, encoded: bytes) -> None:
        """Cache the encoded response iff this datagram's answer came
        straight from the answer cache (the only byte-stable paths).
        Positive hits decrement their answer TTLs against the entry's
        fractional expiry; negative hits replay stored authority TTLs
        verbatim; error hits carry no records.  The wire entry expires
        exactly when the underlying cache entry does."""
        plan = getattr(self._render_tls, "plan", None)
        if plan is None:
            return
        kind, expires_at = plan
        self._render_tls.plan = None
        stored = self.render_cache.store(
            key,
            encoded,
            expires_at=expires_at,
            decrement_answers_until=expires_at if kind == "positive" else None,
        )
        if stored:
            self.stats.render_stores += 1

    # -- resolution pipeline ------------------------------------------------------------

    def _resolve_outcome(
        self,
        qname: Name,
        rdtype: RdataType,
        checking_disabled: bool = False,
        deadline: DeadlineBudget | None = None,
    ) -> ResolutionOutcome:
        outcome = self._outcome_from_cache(qname, rdtype)
        if outcome is not None:
            return outcome

        # Single-flight: when another lane is already resolving this
        # exact question, park until it finishes and serve its result
        # (usually via the cache it just populated).  ``wait_virtual``
        # returns False outside concurrent lanes, where an in-flight
        # duplicate is impossible anyway.  The wait is bounded by the
        # client's deadline: a parked lane still owes its client an
        # answer before their timer fires, so on expiry it stops
        # waiting and degrades (the spent budget makes the resolve
        # below abort upstream work and fall straight to serve-stale).
        key = (qname, int(rdtype), bool(checking_disabled))
        flight = self._client_flights.get(key)
        if flight is not None and self.clock.wait_virtual(
            lambda: flight.done,
            wake_at=deadline.deadline if deadline is not None else None,
        ):
            if flight.done:
                self.stats.coalesced += 1
                if self.obs.enabled:
                    self._m_coalesced.labels(
                        profile=self._obs_profile, level="client"
                    ).inc()
                    self.obs.trace_event(TraceEventKind.COALESCED, level="client")
                outcome = self._outcome_from_cache(qname, rdtype)
                if outcome is not None:
                    return outcome
                if flight.outcome is not None:
                    return flight.outcome
                # Owner failed without caching anything; resolve ourselves.

        own = _Flight()
        # Claim the single-flight slot unless a live owner still holds it
        # (deadline bail-out above): their waiters must keep a marker
        # that actually flips when the owner finishes.
        current = self._client_flights.get(key)
        claimed = current is None or current.done
        if claimed:
            self._client_flights[key] = own
        try:
            outcome = self._resolve_uncached(qname, rdtype, checking_disabled, deadline)
            own.outcome = outcome
            return outcome
        finally:
            own.done = True
            if claimed and self._client_flights.get(key) is own:
                self._client_flights.pop(key, None)

    def _outcome_from_cache(
        self, qname: Name, rdtype: RdataType
    ) -> ResolutionOutcome | None:
        """Error/positive/negative cache probe, in that order, or None."""
        error = self.cache.get_error(qname, rdtype)
        if error is not None:
            outcome = ResolutionOutcome()
            outcome.rcode = error.rcode
            outcome.from_cache = True
            record = EventRecord(
                ResolutionEvent.CACHED_ERROR_SERVED,
                qname=qname,
                rdtype=str(rdtype),
                detail=error.detail,
            )
            outcome.events.append(record)
            outcome.validation = ValidationTrace.insecure()
            self._note_cache_hit("error", record)
            self._render_note("error", error.expires_at)
            return outcome

        cached = self.cache.get_rrset(qname, rdtype)
        if cached is not None:
            outcome = ResolutionOutcome()
            outcome.rcode = Rcode.NOERROR
            outcome.answer_rrsets = [cached]
            outcome.from_cache = True
            outcome.validation = ValidationTrace.insecure()
            self._note_cache_hit("positive")
            self._render_note("positive", self.cache.positive_expiry(qname, rdtype))
            return outcome
        negative = self.cache.get_negative(qname, rdtype)
        if negative is not None:
            outcome = ResolutionOutcome()
            outcome.rcode = negative.rcode
            outcome.authority_rrsets = [r.copy() for r in negative.authority]
            outcome.from_cache = True
            outcome.validation = ValidationTrace.insecure()
            self._note_cache_hit("negative")
            self._render_note("negative", negative.expires_at)
            return outcome
        return None

    def _note_cache_hit(self, kind: str, record: EventRecord | None = None) -> None:
        if not self.obs.enabled:
            return
        self._m_cache_hits.labels(profile=self._obs_profile, kind=kind).inc()
        self.obs.trace_event(TraceEventKind.CACHE_HIT, hit=kind)
        if record is not None:
            self.obs.trace_event_record(record)

    def _resolve_uncached(
        self,
        qname: Name,
        rdtype: RdataType,
        checking_disabled: bool,
        deadline: DeadlineBudget | None = None,
    ) -> ResolutionOutcome:
        outcome = ResolutionOutcome()
        events: list[EventRecord] = []
        self._events_tls.active = events
        self._deadline_tls.active = deadline
        try:
            iteration = self.engine.resolve(qname, rdtype, events, deadline=deadline)

            if not iteration.ok and iteration.rcode == Rcode.SERVFAIL:
                outcome.rcode = Rcode.SERVFAIL
                outcome.events = events
                if any(
                    record.event is ResolutionEvent.QUERY_BUDGET_EXCEEDED
                    for record in events
                ):
                    self.stats.budget_exhausted += 1
                if any(
                    record.event is ResolutionEvent.DEADLINE_EXHAUSTED
                    for record in events
                ):
                    self.stats.deadline_hits += 1
                if iteration.failed_signed_zone:
                    outcome.validation = ValidationTrace.bogus(
                        FailureReason.DNSKEY_UNFETCHABLE,
                        Role.TRANSPORT,
                        zone=iteration.failed_zone,
                    )
                else:
                    outcome.validation = ValidationTrace.insecure()
                self._maybe_serve_stale(qname, rdtype, outcome)
                if not outcome.stale:
                    self.cache.put_error(qname, rdtype, Rcode.SERVFAIL)
                self.stats.servfail += 1
                return outcome

            outcome.rcode = iteration.rcode
            outcome.answer_rrsets = iteration.answer
            outcome.authority_rrsets = iteration.authority
            outcome.events = events

            if self.validate_enabled and not checking_disabled and iteration.zone_path:
                now = int(self.clock.now())
                relevant_answer = [
                    rrset
                    for rrset in iteration.answer
                    if rrset.name == qname or rrset.rdtype == RdataType.RRSIG
                ]
                trace = self.validator.validate(
                    qname,
                    rdtype,
                    iteration.zone_path,
                    relevant_answer or iteration.answer,
                    iteration.authority,
                    iteration.rcode,
                    now,
                )
                outcome.validation = trace
                if self.obs.enabled:
                    state = trace.state.name.lower()
                    self._m_validation.labels(
                        profile=self._obs_profile, state=state
                    ).inc()
                    attrs: dict = {"state": state}
                    if trace.reason is not None:
                        attrs["reason"] = trace.reason.name
                    if trace.role is not None:
                        attrs["role"] = trace.role.name
                    if trace.zone is not None:
                        attrs["zone"] = str(trace.zone)
                    self.obs.trace_event(TraceEventKind.VALIDATION, **attrs)
                if trace.is_bogus:
                    self.stats.validated_bogus += 1
                    outcome.rcode = Rcode.SERVFAIL
                    outcome.answer_rrsets = []
                    outcome.authority_rrsets = []
                    self._maybe_serve_stale(qname, rdtype, outcome)
                    if not outcome.stale:
                        self.cache.put_error(
                            qname, rdtype, Rcode.SERVFAIL, detail="validation failure"
                        )
                    self.stats.servfail += 1
                    return outcome
                if trace.is_secure:
                    self.stats.validated_secure += 1
            else:
                outcome.validation = ValidationTrace.insecure()

            self._store_in_cache(qname, rdtype, outcome)
            if outcome.rcode == Rcode.NXDOMAIN:
                self.stats.nxdomain += 1
            return outcome
        finally:
            self._events_tls.active = None
            self._deadline_tls.active = None

    def _maybe_serve_stale(
        self, qname: Name, rdtype: RdataType, outcome: ResolutionOutcome
    ) -> None:
        stale = self.cache.get_stale_rrset(qname, rdtype)
        if stale is not None:
            outcome.rcode = Rcode.NOERROR
            outcome.answer_rrsets = [stale]
            outcome.stale = True
            record = EventRecord(
                ResolutionEvent.STALE_ANSWER_SERVED, qname=qname, rdtype=str(rdtype)
            )
            outcome.events.append(record)
            if self.obs.enabled:
                self.obs.trace_event_record(record)
            if not self._refreshing:  # stats count client-visible stales only
                self.stats.stale_served += 1
                if self.obs.enabled:
                    self._m_stale.labels(
                        profile=self._obs_profile, kind="positive"
                    ).inc()
            self._enqueue_refresh(qname, rdtype)
            return
        negative = self.cache.get_stale_negative(qname, rdtype)
        if negative is not None:
            outcome.rcode = negative.rcode
            # RFC 8767's 30-second stale TTL applies to the SOA (and the
            # rest of the authority section) of stale negatives too.
            outcome.authority_rrsets = [
                r.copy(ttl=min(int(r.ttl), STALE_TTL)) for r in negative.authority
            ]
            outcome.stale = True
            event = (
                ResolutionEvent.STALE_NXDOMAIN_SERVED
                if negative.rcode == Rcode.NXDOMAIN
                else ResolutionEvent.STALE_ANSWER_SERVED
            )
            record = EventRecord(event, qname=qname, rdtype=str(rdtype))
            outcome.events.append(record)
            if self.obs.enabled:
                self.obs.trace_event_record(record)
            if not self._refreshing:
                if negative.rcode == Rcode.NXDOMAIN:
                    self.stats.stale_nxdomain_served += 1
                    kind = "nxdomain"
                else:
                    self.stats.stale_served += 1
                    kind = "positive"
                if self.obs.enabled:
                    self._m_stale.labels(profile=self._obs_profile, kind=kind).inc()
            self._enqueue_refresh(qname, rdtype)

    # -- stale-while-revalidate ---------------------------------------------------

    def _enqueue_refresh(self, qname: Name, rdtype: RdataType) -> None:
        if self._refresh is not None and not self._refreshing:
            self._refresh.enqueue((qname, int(rdtype)))

    def run_refreshes(self, limit: int | None = None) -> int:
        """Drain up to ``limit`` due background refreshes; returns how
        many names came back fresh.  A refresh that still cannot reach
        the authority is rescheduled with a back-off rather than dropped.
        """
        if self._refresh is None or self._refreshing:
            return 0
        if limit is None:
            limit = self.resilience.refresh_per_query
        refreshed = 0
        self._refreshing = True
        try:
            for key in self._refresh.due(limit):
                qname, rdtype_value = key
                rdtype = RdataType(rdtype_value)
                self.stats.refreshes += 1
                # Budget the refresh like a client query: background
                # work must not hog the serving thread longer than a
                # query may, and the clamp keeps the retry path's
                # jittered backoff from ever sleeping (the first
                # timeout spends the whole budget) — so refresh timing
                # stays a pure function of the workload.
                deadline: DeadlineBudget | None = None
                if self.resilience is not None and self.resilience.client_deadline > 0:
                    deadline = DeadlineBudget.after(
                        self.clock, self.resilience.client_deadline
                    )
                outcome = self._resolve_uncached(
                    qname, rdtype, checking_disabled=False, deadline=deadline
                )
                if outcome.stale or outcome.rcode == Rcode.SERVFAIL:
                    self._refresh.reschedule(key)
                else:
                    self._refresh.done(key)
                    self.stats.refreshed_ok += 1
                    refreshed += 1
        finally:
            self._refreshing = False
        return refreshed

    def answer_from_cache(self, query: Message) -> Message | None:
        """Best effort answer without any upstream work: fresh, negative,
        or cached-error hit, else a stale answer — or None.  This is the
        always-served path the overload-shedding frontend relies on."""
        if not query.question:
            return None
        question = query.question[0]
        qname, rdtype = question.name, question.rdtype
        outcome = self._outcome_from_cache(qname, rdtype)
        if outcome is None:
            outcome = ResolutionOutcome()
            self._maybe_serve_stale(qname, rdtype, outcome)
            if not outcome.stale:
                return None
        self.stats.queries += 1
        return self._build_response(query, outcome)

    def _store_in_cache(
        self, qname: Name, rdtype: RdataType, outcome: ResolutionOutcome
    ) -> None:
        if outcome.rcode == Rcode.NOERROR and outcome.answer_rrsets:
            for rrset in outcome.answer_rrsets:
                if rrset.rdtype != RdataType.RRSIG:
                    self.cache.put_rrset(rrset)
        elif outcome.rcode in (Rcode.NOERROR, Rcode.NXDOMAIN):
            soa_ttl = 300.0
            for rrset in outcome.authority_rrsets:
                if rrset.rdtype == RdataType.SOA:
                    soa_ttl = rrset.ttl
            self.cache.put_negative(
                qname, rdtype, outcome.rcode, outcome.authority_rrsets, soa_ttl
            )

    # -- response assembly ------------------------------------------------------------------

    def _build_response(self, query: Message, outcome: ResolutionOutcome) -> Message:
        response = query.make_response()
        response.rcode = outcome.rcode
        dnssec_ok = query.edns is not None and query.edns.dnssec_ok
        for rrset in outcome.answer_rrsets:
            if rrset.rdtype == RdataType.RRSIG and not dnssec_ok:
                continue
            response.answer.append(rrset.copy())
        for rrset in outcome.authority_rrsets:
            if rrset.rdtype in (RdataType.RRSIG, RdataType.NSEC, RdataType.NSEC3) and not dnssec_ok:
                continue
            response.authority.append(rrset.copy())
        if outcome.validation.state is ValidationState.SECURE and not query.cd:
            response.ad = True
        if query.edns is not None:
            for emission in self.policy.emissions(outcome):
                response.add_ede(emission.code, emission.extra_text)
            if response.extended_errors:
                self.stats.with_ede += 1
        return response

    # -- validator record source ----------------------------------------------------------------

    def fetch_from_zone(self, zone: Name, qname: Name, rdtype: RdataType) -> FetchResult:
        key = (zone, qname, int(rdtype))
        entry = self._infra_cache.get(key)
        if entry is not None and entry.expires_at > self.clock.now():
            self.stats.infra_hits += 1
            self._note_infra_fetch(zone, qname, rdtype, "hit")
            return entry.result
        if self._l2 is not None:
            shared = self._l2.get(key)
            if shared is not None:
                # Read-through: adopt the sibling shard's fetch into our
                # private L1 at its original expiry.  The payload is the
                # exact FetchResult a fresh fetch would have produced
                # (zone content is deterministic), so this cannot change
                # categorization — only the wire volume.
                result, expires_at = shared
                self._infra_cache[key] = _InfraEntry(
                    result=result, expires_at=expires_at
                )
                self.stats.infra_hits += 1
                self._note_infra_fetch(zone, qname, rdtype, "hit")
                return result
        # Single-flight on infrastructure records: two lanes validating
        # through the same zone cut want the same DNSKEY/DS set — the
        # second parks and reads the entry the first just cached.  Like
        # the client-flight wait, bounded by the client deadline riding
        # in thread-local state: past it, stop waiting and let the spent
        # budget abort the fetch below.
        deadline = getattr(self._deadline_tls, "active", None)
        flight = self._infra_flights.get(key)
        if flight is not None and self.clock.wait_virtual(
            lambda: flight.done,
            wake_at=deadline.deadline if deadline is not None else None,
        ):
            if flight.done:
                self.stats.coalesced_infra += 1
                if self.obs.enabled:
                    self._m_coalesced.labels(
                        profile=self._obs_profile, level="infra"
                    ).inc()
                    self.obs.trace_event(TraceEventKind.COALESCED, level="infra")
                entry = self._infra_cache.get(key)
                if entry is not None and entry.expires_at > self.clock.now():
                    return entry.result
                # Owner unwound without caching; fall through and fetch.
        self.stats.infra_misses += 1
        self._note_infra_fetch(zone, qname, rdtype, "miss")
        own = _Flight()
        current = self._infra_flights.get(key)
        claimed = current is None or current.done
        if claimed:
            self._infra_flights[key] = own
        try:
            now = self.clock.now()
            events: list[EventRecord] = []
            response = self.engine.query_zone(
                zone,
                qname,
                rdtype,
                events,
                deadline=getattr(self._deadline_tls, "active", None),
            )
            active = getattr(self._events_tls, "active", None)
            if active is not None:
                active.extend(events)
            if response is None:
                result = FetchResult(ok=False, rcode=Rcode.SERVFAIL, events=events)
            else:
                result = FetchResult(
                    ok=True,
                    rcode=response.rcode,
                    answer=[r.copy() for r in response.answer],
                    authority=[r.copy() for r in response.authority],
                    events=events,
                )
            self._infra_cache[key] = _InfraEntry(
                result=result, expires_at=now + self._infra_ttl
            )
            if self._l2 is not None:
                self._l2.put(key, result, now + self._infra_ttl)
            return result
        finally:
            own.done = True
            if claimed and self._infra_flights.get(key) is own:
                self._infra_flights.pop(key, None)

    def _note_infra_fetch(
        self, zone: Name, qname: Name, rdtype: RdataType, outcome: str
    ) -> None:
        if not self.obs.enabled:
            return
        self._m_infra.labels(profile=self._obs_profile, outcome=outcome).inc()
        self.obs.trace_event(
            TraceEventKind.INFRA_FETCH,
            zone=str(zone),
            qname=str(qname),
            rdtype=str(rdtype),
            outcome=outcome,
        )

    def flush_caches(self) -> None:
        self.cache.flush()
        self._infra_cache.clear()

    # -- uniform inspection surface (shared with ResolverCluster) --------------------------------

    def cache_stats(self):
        """Answer-cache counters (the cluster sums these across shards)."""
        return self.cache.stats

    def open_breaker_keys(self) -> tuple[str, ...]:
        return tuple(sorted(self.engine.breakers.open_keys()))

    def refresh_backlog(self) -> int:
        return len(self._refresh) if self._refresh is not None else 0


class _ValidatorSource:
    """Adapter giving the validator access to the resolver's fetch path."""

    def __init__(self, resolver: RecursiveResolver):
        self._resolver = resolver

    def fetch_from_zone(self, zone: Name, qname: Name, rdtype: RdataType) -> FetchResult:
        return self._resolver.fetch_from_zone(zone, qname, rdtype)
