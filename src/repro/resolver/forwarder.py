"""A forwarding resolver (CPE / enterprise style).

RFC 8914 is explicit that *forwarders* may generate, forward, and parse
EDE options, and warns that a forwarder relaying upstream errors can
confuse clients unless it marks its own contributions.  This forwarder:

* relays recursive queries to one or more upstream resolvers over the
  fabric (failover in order);
* **forwards** upstream EDE options verbatim;
* optionally annotates them (``annotate_forwarded``) by prefixing the
  EXTRA-TEXT with the upstream address — the disambiguation the RFC
  suggests;
* generates its *own* EDE when every upstream is unreachable
  (No Reachable Authority 22 / Network Error 23) or when serving from
  its small answer cache after upstream loss (Stale Answer 3);
* applies an optional :class:`~repro.resolver.policy.LocalPolicy`
  before forwarding (the home-router blocklist case), emitting the
  policy codes itself.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..dns.ede import EdeCode
from ..dns.message import Message
from ..dns.name import Name
from ..dns.rcode import Rcode
from ..dns.types import RdataType
from ..net.fabric import NetworkFabric, TransportError
from ..obs import NULL_OBS, Observability
from .cache import CacheConfig, ResolverCache, default_cache_config
from .policy import ACTION_EDE, LocalPolicy, PolicyAction


@dataclass
class ForwarderStats:
    queries: int = 0
    forwarded: int = 0
    upstream_failovers: int = 0
    upstream_exhausted: int = 0
    ede_forwarded: int = 0
    ede_generated: int = 0
    policy_hits: int = 0


class ForwardingResolver:
    """Relays queries to upstream recursive resolvers, EDE included."""

    def __init__(
        self,
        fabric: NetworkFabric,
        upstreams: list[str],
        source_ip: str = "203.0.113.53",
        annotate_forwarded: bool = False,
        local_policy: LocalPolicy | None = None,
        cache_config: CacheConfig | None = None,
        timeout: float = 3.0,
        rng_seed: int = 0xF04D,
        obs: Observability | None = None,
    ):
        if not upstreams:
            raise ValueError("a forwarder needs at least one upstream")
        self.fabric = fabric
        self.upstreams = list(upstreams)
        self.source_ip = source_ip
        self.annotate_forwarded = annotate_forwarded
        self.local_policy = local_policy
        # Shared serving-path default (serve-stale ON); pass an explicit
        # cache_config to model a different cache policy.
        self.cache = ResolverCache(
            fabric.clock, cache_config or default_cache_config()
        )
        self.timeout = timeout
        self._rng = random.Random(rng_seed)
        self.stats = ForwarderStats()
        self.obs = obs or NULL_OBS
        self._m_queries = self.obs.counter("repro_forwarder_queries_total")
        self._m_failovers = self.obs.counter(
            "repro_forwarder_upstream_failovers_total"
        )
        self._m_ede = self.obs.counter("repro_forwarder_ede_total")

    # -- fabric endpoint ------------------------------------------------------

    def handle_datagram(self, wire: bytes, source: str) -> bytes | None:
        try:
            query = Message.from_wire(wire)
        except Exception:
            return Message(rcode=Rcode.FORMERR, qr=True).to_wire()
        return self.handle_query(query, source).to_wire()

    # -- main path ----------------------------------------------------------------

    def resolve(self, qname: Name | str, rdtype: RdataType | str = RdataType.A) -> Message:
        query = Message.make_query(qname, rdtype, want_dnssec=False, rng=self._rng)
        return self.handle_query(query)

    def handle_query(self, query: Message, source: str = "") -> Message:
        self.stats.queries += 1
        self._m_queries.inc()
        question = query.question[0]
        qname, rdtype = question.name, question.rdtype

        if self.local_policy is not None:
            decision = self.local_policy.evaluate(qname)
            if decision is not None:
                self.stats.policy_hits += 1
                return self._policy_response(query, qname, rdtype, decision)

        cached = self.cache.get_rrset(qname, rdtype)
        if cached is not None:
            response = query.make_response()
            response.answer.append(cached)
            return response

        upstream_response = self._ask_upstreams(query)
        if upstream_response is None:
            return self._all_upstreams_down(query, qname, rdtype)

        response = self._relay(query, upstream_response)
        if response.rcode == Rcode.NOERROR:
            for rrset in response.answer:
                if rrset.rdtype == rdtype:
                    self.cache.put_rrset(rrset)
        return response

    # -- internals --------------------------------------------------------------------

    def _ask_upstreams(self, query: Message) -> "tuple[str, Message] | None":
        for upstream in self.upstreams:
            relay = Message.make_query(
                query.question[0].name,
                query.question[0].rdtype,
                want_dnssec=query.edns.dnssec_ok if query.edns else False,
                recursion_desired=True,
                rng=self._rng,
            )
            try:
                raw = self.fabric.send(
                    upstream, relay.to_wire(), source=self.source_ip,
                    timeout=self.timeout,
                )
            except TransportError:
                self.stats.upstream_failovers += 1
                self._m_failovers.inc()
                continue
            try:
                response = Message.from_wire(raw)
            except Exception:
                self.stats.upstream_failovers += 1
                self._m_failovers.inc()
                continue
            return upstream, response
        self.stats.upstream_exhausted += 1
        return None

    def _relay(self, query: Message, upstream_result: tuple[str, Message]) -> Message:
        upstream, upstream_response = upstream_result
        self.stats.forwarded += 1
        response = query.make_response()
        response.rcode = upstream_response.rcode
        response.answer = [r.copy() for r in upstream_response.answer]
        response.authority = [r.copy() for r in upstream_response.authority]
        if query.edns is not None:
            for option in upstream_response.extended_errors:
                text = option.extra_text
                if self.annotate_forwarded:
                    prefix = f"[from {upstream}] "
                    text = prefix + text if text else prefix.strip()
                response.add_ede(option.info_code, text)
                self.stats.ede_forwarded += 1
                self._m_ede.labels(origin="forwarded").inc()
        return response

    def _all_upstreams_down(
        self, query: Message, qname: Name, rdtype: RdataType
    ) -> Message:
        response = query.make_response()
        stale = self.cache.get_stale_rrset(qname, rdtype)
        if stale is not None:
            response.answer.append(stale)
            if query.edns is not None:
                response.add_ede(EdeCode.STALE_ANSWER)
                self.stats.ede_generated += 1
                self._m_ede.labels(origin="generated").inc()
            return response
        response.rcode = Rcode.SERVFAIL
        if query.edns is not None:
            response.add_ede(EdeCode.NO_REACHABLE_AUTHORITY)
            response.add_ede(
                EdeCode.NETWORK_ERROR,
                f"no upstream resolver reachable ({', '.join(self.upstreams)})",
            )
            self.stats.ede_generated += 2
            self._m_ede.labels(origin="generated").inc(2)
        return response

    def _policy_response(self, query: Message, qname, rdtype, decision) -> Message:
        from ..dns.rdata import A as ARdata
        from ..dns.rrset import RRset

        response = query.make_response()
        response.rcode = decision.rcode
        if decision.action is PolicyAction.FORGE and rdtype == RdataType.A:
            response.answer.append(
                RRset.of(
                    qname, RdataType.A,
                    ARdata(address=decision.rule.forged_address), ttl=30,
                )
            )
        if query.edns is not None:
            response.add_ede(ACTION_EDE[decision.action], decision.rule.reason)
            self.stats.ede_generated += 1
            self._m_ede.labels(origin="generated").inc()
        return response
