"""AXFR client (RFC 5936) — how the paper obtained four ccTLD zone files.

Section 4.1: "``.se``, ``.nu``, ``.ch``, ``.li`` top-level domain zone
files accessible via AXFR zone transfers".  :func:`axfr` performs the
transfer over the fabric's TCP path and returns the received records as
a :class:`~repro.zones.zone.Zone`; :func:`axfr_domains` extracts the
registered-domain list a scanner actually wants from it.
"""

from __future__ import annotations

import random

from ..dns.exceptions import DnsError
from ..dns.message import Message
from ..dns.name import Name
from ..dns.rcode import Rcode
from ..dns.types import RdataType
from ..net.fabric import NetworkFabric, TransportError
from ..zones.zone import Zone


class TransferError(DnsError):
    """The zone transfer was refused or malformed."""


def axfr(
    fabric: NetworkFabric,
    server: str,
    zone_name: Name | str,
    source_ip: str = "198.51.100.2",
    timeout: float = 10.0,
    rng: "random.Random | None" = None,
) -> Zone:
    """Transfer ``zone_name`` from ``server``; raises TransferError."""
    if isinstance(zone_name, str):
        zone_name = Name.from_text(zone_name)
    query = Message.make_query(
        zone_name, RdataType.AXFR, recursion_desired=False, use_edns=False,
        rng=rng,
    )
    try:
        raw = fabric.send(
            server, query.to_wire(), source=source_ip,
            timeout=timeout, transport="tcp",
        )
    except TransportError as exc:
        raise TransferError(f"transfer transport failure: {exc}") from exc
    # AXFR responses are the largest messages in the system; parse them
    # through a memoryview so the reader slices labels and rdata out of
    # the receive buffer without an up-front copy.
    response = Message.from_wire(memoryview(raw))
    if response.rcode != Rcode.NOERROR:
        raise TransferError(
            f"transfer refused: rcode {Rcode(response.rcode).name}"
        )
    if not response.answer:
        raise TransferError("empty transfer")
    first = response.answer[0]
    if first.rdtype != RdataType.SOA or first.name != zone_name:
        raise TransferError("transfer does not start with the zone SOA")

    zone = Zone(zone_name)
    for rrset in response.answer:
        zone.add(rrset.copy())
    return zone


def axfr_domains(zone: Zone) -> list[str]:
    """Registered domains (delegation points) found in a TLD zone."""
    names = set()
    for rrset in zone.all_rrsets():
        if rrset.rdtype == RdataType.NS and rrset.name != zone.origin:
            names.add(str(rrset.name).rstrip("."))
    return sorted(names)
