"""The seven resolver profiles the paper tests.

Each profile bundles a validator capability set with an EDE policy.
The reason→INFO-CODE tables transcribe the observable behaviour of
BIND 9.19.9, Unbound 1.16.2, PowerDNS Recursor 4.8.2, Knot Resolver
5.6.0, Cloudflare DNS, Quad9, and OpenDNS as published in the paper's
Table 4 (see DESIGN.md for the methodology: detection is computed by
the shared validation engine on genuinely misconfigured zones; only the
*mapping* to codes is vendor data).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..dnssec.algorithms import CLOUDFLARE_SUPPORTED, FULL_SUPPORTED, DsDigest
from ..dnssec.trace import FailureReason as FR
from ..dnssec.trace import ResolutionEvent as EV
from ..dnssec.validator import ValidatorConfig
from .cache import CacheConfig
from .ede_policy import EdePolicy

_FULL_DIGESTS = frozenset(
    {int(DsDigest.SHA1), int(DsDigest.SHA256), int(DsDigest.SHA384)}
)


@dataclass
class ResolverProfile:
    """A vendor identity: validation capabilities + EDE policy."""

    name: str
    policy: EdePolicy
    validator: ValidatorConfig = field(default_factory=ValidatorConfig)
    cache: CacheConfig = field(default_factory=CacheConfig)
    #: Public-resolver anycast address (used as the profile's endpoint).
    service_address: str = ""


def _table(rows: dict[FR, tuple[int, ...]]) -> dict[FR, tuple[int, ...]]:
    return dict(rows)


# ---------------------------------------------------------------------------
# BIND 9.19.9 — implements only the RPZ (15-18) and serve-stale (3, 4, 19)
# codes (paper section 2); none of the testbed's DNSSEC cases produce EDE.
# ---------------------------------------------------------------------------

BIND = ResolverProfile(
    name="BIND 9.19.9",
    policy=EdePolicy(
        name="bind",
        reason_codes={},
        event_codes={
            EV.STALE_ANSWER_SERVED: (3,),
            EV.STALE_NXDOMAIN_SERVED: (19,),
        },
    ),
    validator=ValidatorConfig(supported_algorithms=FULL_SUPPORTED,
                              supported_ds_digests=_FULL_DIGESTS),
)

# ---------------------------------------------------------------------------
# Unbound 1.16.2 — complete DNSSEC EDE coverage, prefers the specific
# DNSKEY Missing (9) / NSEC Missing (12) codes over the generic Bogus (6).
# ---------------------------------------------------------------------------

UNBOUND = ResolverProfile(
    name="Unbound 1.16.2",
    policy=EdePolicy(
        name="unbound",
        reason_codes=_table({
            FR.DS_DNSKEY_MISMATCH: (9,),
            FR.DS_DIGEST_MISMATCH: (9,),
            FR.DNSKEY_SIG_EXPIRED: (7,),
            FR.LEAF_SIG_EXPIRED: (6,),
            FR.DNSKEY_SIG_NOT_YET_VALID: (9,),
            FR.LEAF_SIG_NOT_YET_VALID: (6,),
            FR.DNSKEY_RRSIG_MISSING: (10,),
            FR.LEAF_RRSIG_MISSING: (10,),
            FR.DNSKEY_SIG_INVERTED: (9,),
            FR.LEAF_SIG_INVERTED: (6,),
            FR.NSEC3_RECORDS_MISSING: (12,),
            FR.NSEC3_BAD_HASH: (6,),
            FR.NSEC3_BAD_NEXT: (6,),
            FR.NSEC3_BAD_RRSIG: (6,),
            FR.NSEC3_RRSIG_MISSING: (12,),
            FR.NSEC3PARAM_MISSING: (10,),
            FR.NSEC3PARAM_SALT_MISMATCH: (12,),
            FR.NSEC3_CHAIN_ABSENT: (10,),
            FR.ZSK_MISSING: (9,),
            FR.ZSK_BAD: (9,),
            FR.KSK_SIG_MISSING: (10,),
            FR.KSK_SIG_INVALID: (9,),
            FR.DNSKEY_SIG_INVALID: (9,),
            FR.ZONE_KEY_BITS_CLEAR: (9,),
            FR.ZSK_ALGO_MISMATCH: (9,),
            FR.ZSK_ALGO_UNASSIGNED: (9,),
            FR.ZSK_ALGO_RESERVED: (9,),
            FR.NSEC_MISSING: (12,),
        }),
        event_codes={
            EV.STALE_ANSWER_SERVED: (3,),
            EV.CACHED_ERROR_SERVED: (13,),
        },
    ),
    validator=ValidatorConfig(supported_algorithms=FULL_SUPPORTED,
                              supported_ds_digests=_FULL_DIGESTS),
)

# ---------------------------------------------------------------------------
# PowerDNS Recursor 4.8.2 — DNSSEC codes with a tilt toward the generic
# Bogus (6) for key-content problems; silent on NSEC3 chain damage.
# ---------------------------------------------------------------------------

POWERDNS = ResolverProfile(
    name="PowerDNS Recursor 4.8.2",
    policy=EdePolicy(
        name="powerdns",
        reason_codes=_table({
            FR.DS_DNSKEY_MISMATCH: (9,),
            FR.DS_DIGEST_MISMATCH: (9,),
            FR.DNSKEY_SIG_EXPIRED: (7,),
            FR.LEAF_SIG_EXPIRED: (7,),
            FR.DNSKEY_SIG_NOT_YET_VALID: (8,),
            FR.LEAF_SIG_NOT_YET_VALID: (8,),
            FR.DNSKEY_RRSIG_MISSING: (10,),
            FR.LEAF_RRSIG_MISSING: (10,),
            FR.DNSKEY_SIG_INVERTED: (7,),
            FR.LEAF_SIG_INVERTED: (7,),
            FR.NSEC3PARAM_MISSING: (10,),
            FR.NSEC3_CHAIN_ABSENT: (10,),
            FR.ZSK_MISSING: (6,),
            FR.ZSK_BAD: (6,),
            FR.KSK_SIG_MISSING: (9,),
            FR.KSK_SIG_INVALID: (6,),
            FR.DNSKEY_SIG_INVALID: (6,),
            FR.ZONE_KEY_BITS_CLEAR: (10,),
            FR.ZSK_ALGO_MISMATCH: (6,),
            FR.ZSK_ALGO_UNASSIGNED: (6,),
            FR.ZSK_ALGO_RESERVED: (6,),
        }),
        event_codes={
            EV.STALE_ANSWER_SERVED: (3,),
            EV.CACHED_ERROR_SERVED: (13,),
        },
    ),
    validator=ValidatorConfig(supported_algorithms=FULL_SUPPORTED,
                              supported_ds_digests=_FULL_DIGESTS),
)

# ---------------------------------------------------------------------------
# Knot Resolver 5.6.0 — generic DNSSEC Bogus (6) for most chain breaks,
# Other (0) with an "LSLC: unsupported digest/key" note for unsupported
# algorithm downgrades.
# ---------------------------------------------------------------------------

KNOT = ResolverProfile(
    name="Knot Resolver 5.6.0",
    policy=EdePolicy(
        name="knot",
        reason_codes=_table({
            FR.DS_DNSKEY_MISMATCH: (6,),
            FR.DS_DIGEST_MISMATCH: (6,),
            FR.DS_UNASSIGNED_KEY_ALGO: (0,),
            FR.DS_RESERVED_KEY_ALGO: (0,),
            FR.DS_UNASSIGNED_DIGEST: (0,),
            FR.ALGO_DEPRECATED: (0,),
            FR.DNSKEY_SIG_EXPIRED: (7,),
            FR.DNSKEY_SIG_NOT_YET_VALID: (8,),
            FR.DNSKEY_RRSIG_MISSING: (10,),
            FR.LEAF_RRSIG_MISSING: (10,),
            FR.DNSKEY_SIG_INVERTED: (7,),
            FR.NSEC3_RECORDS_MISSING: (12,),
            FR.NSEC3_BAD_HASH: (6,),
            FR.NSEC3_BAD_NEXT: (6,),
            FR.NSEC3_BAD_RRSIG: (6,),
            FR.NSEC3_RRSIG_MISSING: (10,),
            FR.NSEC3PARAM_MISSING: (10,),
            FR.NSEC3PARAM_SALT_MISMATCH: (12,),
            FR.NSEC3_CHAIN_ABSENT: (10,),
            FR.ZSK_MISSING: (6,),
            FR.ZSK_BAD: (6,),
            FR.KSK_SIG_MISSING: (6,),
            FR.KSK_SIG_INVALID: (6,),
            FR.DNSKEY_SIG_INVALID: (6,),
            FR.ZONE_KEY_BITS_CLEAR: (10,),
            FR.ZSK_ALGO_MISMATCH: (6,),
            FR.ZSK_ALGO_UNASSIGNED: (6,),
            FR.ZSK_ALGO_RESERVED: (6,),
            FR.NSEC_MISSING: (12,),
        }),
        event_codes={
            EV.STALE_ANSWER_SERVED: (3,),
            EV.CACHED_ERROR_SERVED: (13,),
        },
        other_text="LSLC: unsupported digest/key",
    ),
    validator=ValidatorConfig(supported_algorithms=FULL_SUPPORTED,
                              supported_ds_digests=_FULL_DIGESTS),
)

# ---------------------------------------------------------------------------
# Cloudflare DNS — the richest implementation: specific DNSSEC codes,
# transport codes 22/23 with verbose EXTRA-TEXT, Invalid Data (24), key-size
# and algorithm-support signalling (no Ed448 at measurement time, 1024-bit
# RSA minimum), stale/cached-error codes.
# ---------------------------------------------------------------------------

CLOUDFLARE = ResolverProfile(
    name="Cloudflare DNS",
    policy=EdePolicy(
        name="cloudflare",
        reason_codes=_table({
            FR.DS_DNSKEY_MISMATCH: (9,),
            FR.DS_DIGEST_MISMATCH: (6,),
            FR.DS_UNASSIGNED_KEY_ALGO: (9,),
            FR.DS_RESERVED_KEY_ALGO: (1,),
            FR.DS_UNASSIGNED_DIGEST: (2,),
            FR.DS_UNSUPPORTED_DIGEST: (2,),
            FR.ALGO_DEPRECATED: (1,),
            FR.ALGO_UNSUPPORTED: (1,),
            FR.KEY_SIZE_UNSUPPORTED: (1,),
            FR.DNSKEY_SIG_EXPIRED: (7,),
            FR.LEAF_SIG_EXPIRED: (7,),
            FR.DNSKEY_SIG_NOT_YET_VALID: (8,),
            FR.LEAF_SIG_NOT_YET_VALID: (8,),
            FR.DNSKEY_RRSIG_MISSING: (10,),
            FR.LEAF_RRSIG_MISSING: (10,),
            FR.DNSKEY_SIG_INVERTED: (10,),
            FR.LEAF_SIG_INVERTED: (7,),
            FR.NSEC3_RECORDS_MISSING: (6,),
            FR.NSEC3_BAD_HASH: (6,),
            FR.NSEC3_BAD_NEXT: (6,),
            FR.NSEC3_BAD_RRSIG: (6,),
            FR.NSEC3_RRSIG_MISSING: (6,),
            FR.NSEC3PARAM_MISSING: (10,),
            FR.NSEC3PARAM_SALT_MISMATCH: (6,),
            FR.NSEC3_CHAIN_ABSENT: (10,),
            FR.ZSK_MISSING: (6,),
            FR.ZSK_BAD: (6,),
            FR.KSK_SIG_MISSING: (10,),
            FR.KSK_SIG_INVALID: (6,),
            FR.DNSKEY_SIG_INVALID: (6,),
            FR.ZONE_KEY_BITS_CLEAR: (9,),
            FR.ZSK_ALGO_MISMATCH: (6,),
            FR.ZSK_ALGO_UNASSIGNED: (6,),
            FR.ZSK_ALGO_RESERVED: (6,),
            FR.DNSKEY_UNFETCHABLE: (9,),
            FR.NSEC_MISSING: (12,),
            FR.MISMATCHED_ANSWER: (24,),
            FR.STANDBY_KSK_UNSIGNED: (10,),
        }),
        event_codes={
            EV.SERVER_REFUSED: (23,),
            EV.SERVER_SERVFAIL: (23,),
            EV.SERVER_TIMEOUT: (23,),
            EV.MISMATCHED_QUESTION: (24,),
            EV.SERVER_NO_EDNS: (24,),
            EV.STALE_ANSWER_SERVED: (3,),
            EV.STALE_NXDOMAIN_SERVED: (19,),
            EV.CACHED_ERROR_SERVED: (13,),
            EV.ITERATION_LIMIT_EXCEEDED: (0,),
        },
        emit_no_reachable_authority=True,
        verbose_extra_text=True,
    ),
    validator=ValidatorConfig(
        supported_algorithms=CLOUDFLARE_SUPPORTED,
        supported_ds_digests=_FULL_DIGESTS,  # no GOST
        min_rsa_bits=1024,
    ),
    cache=CacheConfig(serve_stale=True),
    service_address="1.1.1.1",
)

# ---------------------------------------------------------------------------
# Quad9 — DNSSEC codes with its own specificity choices (e.g. DNSKEY
# Missing (9) where others say RRSIGs Missing (10) for removed apex sigs).
# ---------------------------------------------------------------------------

QUAD9 = ResolverProfile(
    name="Quad9",
    policy=EdePolicy(
        name="quad9",
        reason_codes=_table({
            FR.DS_DNSKEY_MISMATCH: (9,),
            FR.DS_DIGEST_MISMATCH: (9,),
            FR.DNSKEY_SIG_EXPIRED: (7,),
            FR.LEAF_SIG_EXPIRED: (6,),
            FR.DNSKEY_SIG_NOT_YET_VALID: (9,),
            FR.LEAF_SIG_NOT_YET_VALID: (8,),
            FR.DNSKEY_RRSIG_MISSING: (9,),
            FR.LEAF_RRSIG_MISSING: (10,),
            FR.DNSKEY_SIG_INVERTED: (9,),
            FR.LEAF_SIG_INVERTED: (7,),
            FR.NSEC3_BAD_HASH: (6,),
            FR.NSEC3_BAD_NEXT: (6,),
            FR.NSEC3_RRSIG_MISSING: (9,),
            FR.NSEC3PARAM_MISSING: (9,),
            FR.NSEC3PARAM_SALT_MISMATCH: (9,),
            FR.NSEC3_CHAIN_ABSENT: (10,),
            FR.ZSK_MISSING: (9,),
            FR.ZSK_BAD: (6,),
            FR.KSK_SIG_MISSING: (9,),
            FR.KSK_SIG_INVALID: (6,),
            FR.DNSKEY_SIG_INVALID: (9,),
            FR.ZONE_KEY_BITS_CLEAR: (10,),
            FR.ZSK_ALGO_MISMATCH: (6,),
            FR.ZSK_ALGO_UNASSIGNED: (9,),
            FR.ZSK_ALGO_RESERVED: (6,),
        }),
        event_codes={},
    ),
    validator=ValidatorConfig(supported_algorithms=FULL_SUPPORTED,
                              supported_ds_digests=_FULL_DIGESTS),
    service_address="9.9.9.9",
)

# ---------------------------------------------------------------------------
# OpenDNS — coarse: almost everything maps to DNSSEC Bogus (6), plus the
# anomalous Prohibited (18) for REFUSED-ing authorities the paper reported
# to their support.
# ---------------------------------------------------------------------------

OPENDNS = ResolverProfile(
    name="OpenDNS",
    policy=EdePolicy(
        name="opendns",
        reason_codes=_table({
            FR.DS_DNSKEY_MISMATCH: (6,),
            FR.DS_DIGEST_MISMATCH: (6,),
            FR.DS_UNASSIGNED_KEY_ALGO: (6,),
            FR.DS_RESERVED_KEY_ALGO: (6,),
            FR.DNSKEY_SIG_EXPIRED: (6,),
            FR.LEAF_SIG_EXPIRED: (7,),
            FR.DNSKEY_SIG_NOT_YET_VALID: (6,),
            FR.LEAF_SIG_NOT_YET_VALID: (8,),
            FR.DNSKEY_RRSIG_MISSING: (6,),
            FR.DNSKEY_SIG_INVERTED: (6,),
            FR.LEAF_SIG_INVERTED: (7,),
            FR.NSEC3_RECORDS_MISSING: (12,),
            FR.NSEC3_BAD_HASH: (12,),
            FR.NSEC3_BAD_NEXT: (6,),
            FR.NSEC3_BAD_RRSIG: (6,),
            FR.NSEC3_RRSIG_MISSING: (12,),
            FR.NSEC3PARAM_MISSING: (6,),
            FR.NSEC3PARAM_SALT_MISMATCH: (12,),
            FR.NSEC3_CHAIN_ABSENT: (6,),
            FR.ZSK_MISSING: (6,),
            FR.ZSK_BAD: (6,),
            FR.KSK_SIG_MISSING: (6,),
            FR.KSK_SIG_INVALID: (6,),
            FR.DNSKEY_SIG_INVALID: (6,),
            FR.ZONE_KEY_BITS_CLEAR: (6,),
            FR.ZSK_ALGO_MISMATCH: (6,),
            FR.ZSK_ALGO_UNASSIGNED: (6,),
            FR.ZSK_ALGO_RESERVED: (6,),
        }),
        event_codes={
            EV.SERVER_REFUSED: (18,),
        },
    ),
    validator=ValidatorConfig(supported_algorithms=FULL_SUPPORTED,
                              supported_ds_digests=_FULL_DIGESTS),
    service_address="208.67.222.222",
)

#: The seven systems in the paper's column order.
ALL_PROFILES: tuple[ResolverProfile, ...] = (
    BIND,
    UNBOUND,
    POWERDNS,
    KNOT,
    CLOUDFLARE,
    QUAD9,
    OPENDNS,
)

PROFILES_BY_NAME = {profile.policy.name: profile for profile in ALL_PROFILES}


def get_profile(name: str) -> ResolverProfile:
    """Look up a profile by its short name (``bind``, ``cloudflare``, ...)."""
    try:
        return PROFILES_BY_NAME[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown profile {name!r}; choose from {sorted(PROFILES_BY_NAME)}"
        ) from None
