"""Local resolver policy: the RPZ-style blocking the paper's Section 2
describes (BIND's EDE support started with codes 15-18; Spamhaus ships
an EDE-emitting DNS firewall for PowerDNS).

A :class:`LocalPolicy` is an ordered rule list evaluated before
resolution.  Matching queries never reach the network; the response is
synthesized per the rule's action and the vendor profile attaches the
corresponding resolver-policy INFO-CODE (Blocked 15, Censored 16,
Filtered 17, Prohibited 18, or Forged Answer 4).
"""

from __future__ import annotations

import ipaddress
from dataclasses import dataclass
from enum import Enum
from typing import Iterable

from ..dns.name import Name
from ..dns.rcode import Rcode


class PolicyAction(Enum):
    """What to do with a matching query (and which EDE it implies)."""

    BLOCK = "block"  # resolver's own policy -> Blocked (15), NXDOMAIN
    CENSOR = "censor"  # external mandate -> Censored (16), NXDOMAIN
    FILTER = "filter"  # client opted in -> Filtered (17), NXDOMAIN
    PROHIBIT = "prohibit"  # client not allowed -> Prohibited (18), REFUSED
    FORGE = "forge"  # answer replaced -> Forged Answer (4), NOERROR


@dataclass(frozen=True)
class PolicyRule:
    """One rule: a domain (matched with its subtree) and an action."""

    domain: Name
    action: PolicyAction
    reason: str = ""  # EXTRA-TEXT, e.g. "Malware" for a Spamhaus-style feed
    forged_address: str = "0.0.0.0"  # used by FORGE (walled garden)

    def matches(self, qname: Name) -> bool:
        return qname.is_subdomain_of(self.domain)

    def __post_init__(self) -> None:
        if self.action is PolicyAction.FORGE:
            ipaddress.ip_address(self.forged_address)  # validate early


@dataclass
class PolicyDecision:
    rule: PolicyRule
    rcode: int

    @property
    def action(self) -> PolicyAction:
        return self.rule.action


_ACTION_RCODE = {
    PolicyAction.BLOCK: Rcode.NXDOMAIN,
    PolicyAction.CENSOR: Rcode.NXDOMAIN,
    PolicyAction.FILTER: Rcode.NXDOMAIN,
    PolicyAction.PROHIBIT: Rcode.REFUSED,
    PolicyAction.FORGE: Rcode.NOERROR,
}

#: The INFO-CODE each action maps to (RFC 8914 semantics).
ACTION_EDE = {
    PolicyAction.BLOCK: 15,
    PolicyAction.CENSOR: 16,
    PolicyAction.FILTER: 17,
    PolicyAction.PROHIBIT: 18,
    PolicyAction.FORGE: 4,
}


class LocalPolicy:
    """Ordered rule list with longest-match-wins semantics."""

    def __init__(self, rules: Iterable[PolicyRule] = ()):
        self._rules: list[PolicyRule] = list(rules)
        self.evaluations = 0
        self.hits = 0

    def add(
        self,
        domain: Name | str,
        action: PolicyAction,
        reason: str = "",
        forged_address: str = "0.0.0.0",
    ) -> PolicyRule:
        if isinstance(domain, str):
            domain = Name.from_text(domain)
        rule = PolicyRule(
            domain=domain, action=action, reason=reason, forged_address=forged_address
        )
        self._rules.append(rule)
        return rule

    def rules(self) -> list[PolicyRule]:
        return list(self._rules)

    def __len__(self) -> int:
        return len(self._rules)

    def evaluate(self, qname: Name) -> PolicyDecision | None:
        """Most specific (deepest-domain) matching rule, or None."""
        self.evaluations += 1
        best: PolicyRule | None = None
        for rule in self._rules:
            if rule.matches(qname):
                if best is None or rule.domain.label_count() > best.domain.label_count():
                    best = rule
        if best is None:
            return None
        self.hits += 1
        return PolicyDecision(rule=best, rcode=_ACTION_RCODE[best.action])


def spamhaus_style_feed(entries: dict[str, str]) -> LocalPolicy:
    """Build a BLOCK policy from a {domain: threat-category} feed,
    mirroring the Spamhaus DNS-Firewall-for-PowerDNS deployment the
    paper cites (EDE 15 with the category as EXTRA-TEXT)."""
    policy = LocalPolicy()
    for domain, category in sorted(entries.items()):
        policy.add(domain, PolicyAction.BLOCK, reason=category)
    return policy
