"""Resolver caching: RRsets, negative answers, and failed resolutions.

Three cooperating stores, all driven by the virtual clock:

* an RRset cache (positive data, TTL-bounded) that also supports
  *serve-stale* (RFC 8767): expired entries are retained for a grace
  window and can be served when fresh resolution fails — the paper's
  Stale Answer (3) / Stale NXDOMAIN Answer (19) categories;
* a negative cache for NXDOMAIN/NODATA (RFC 2308);
* an error cache remembering recent SERVFAILs so repeated failures are
  answered locally — the Cached Error (13) category.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..dns.name import Name
from ..dns.rrset import RRset
from ..dns.types import RdataType
from ..net.clock import Clock

#: RFC 8767 section 4: stale data is served with a TTL of 30 seconds so
#: downstream caches re-ask soon after the authority recovers.
STALE_TTL = 30


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    stale_hits: int = 0
    negative_hits: int = 0
    error_hits: int = 0
    insertions: int = 0
    evictions: int = 0


@dataclass
class _PositiveEntry:
    rrset: RRset
    stored_at: float
    expires_at: float


@dataclass
class _NegativeEntry:
    rcode: int
    authority: list[RRset]
    expires_at: float
    stored_at: float = 0.0


@dataclass
class _ErrorEntry:
    rcode: int
    expires_at: float
    detail: str = ""


@dataclass
class CacheConfig:
    max_entries: int = 100_000
    #: RFC 8767 suggests serving stale data for up to 1-3 days.
    serve_stale: bool = False
    stale_window: float = 86_400.0
    negative_ttl_cap: float = 900.0
    error_ttl: float = 30.0


def default_cache_config() -> CacheConfig:
    """The one serving-path cache default, shared by every front end.

    Serve-stale is ON (RFC 8767, one day of stale retention): anything
    that answers *clients* — ``ForwardingResolver``, ``tools/serve``,
    the resilient UDP frontend — should degrade to stale data rather
    than SERVFAIL during upstream outages.  Resolver instances built
    for *measurement* (the testbed matrix, the wild scan) keep their
    profile's transcription of each vendor's actual cache behaviour and
    must not use this default.
    """
    return CacheConfig(serve_stale=True)


class ResolverCache:
    """TTL cache for one resolver instance."""

    def __init__(self, clock: Clock, config: CacheConfig | None = None):
        self._clock = clock
        self.config = config or CacheConfig()
        self._positive: dict[tuple[Name, int], _PositiveEntry] = {}
        self._negative: dict[tuple[Name, int], _NegativeEntry] = {}
        self._errors: dict[tuple[Name, int], _ErrorEntry] = {}
        self.stats = CacheStats()

    # -- positive -----------------------------------------------------------------

    def put_rrset(self, rrset: RRset) -> None:
        now = self._clock.now()
        key = (rrset.name, int(rrset.rdtype))
        self._positive[key] = _PositiveEntry(
            rrset=rrset.copy(), stored_at=now, expires_at=now + rrset.ttl
        )
        self.stats.insertions += 1
        self._evict_if_needed()

    def get_rrset(self, name: Name, rdtype: RdataType) -> RRset | None:
        """Fresh entry or None; updates the entry's remaining TTL."""
        entry = self._positive.get((name, int(rdtype)))
        if entry is None:
            self.stats.misses += 1
            return None
        now = self._clock.now()
        if now >= entry.expires_at:
            if not self.config.serve_stale or now >= entry.expires_at + self.config.stale_window:
                del self._positive[(name, int(rdtype))]
                self.stats.evictions += 1
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        remaining = max(1, int(entry.expires_at - now))
        return entry.rrset.copy(ttl=remaining)

    def positive_expiry(self, name: Name, rdtype: RdataType) -> float | None:
        """The fractional expiry of a fresh positive entry, or None.

        Read-only (no stats, no eviction): the rendered-wire cache uses
        it to record the exact ``expires_at`` a hit was served against,
        so per-hit TTL patches reproduce ``get_rrset``'s
        ``max(1, int(expires_at - now))`` byte-for-byte.
        """
        entry = self._positive.get((name, int(rdtype)))
        if entry is None or self._clock.now() >= entry.expires_at:
            return None
        return entry.expires_at

    def get_stale_rrset(self, name: Name, rdtype: RdataType) -> RRset | None:
        """Expired-but-retained entry for serve-stale, or None."""
        if not self.config.serve_stale:
            return None
        entry = self._positive.get((name, int(rdtype)))
        if entry is None:
            return None
        now = self._clock.now()
        if entry.expires_at <= now < entry.expires_at + self.config.stale_window:
            self.stats.stale_hits += 1
            # RFC 8767: serve stale data with a TTL of 30 seconds.
            return entry.rrset.copy(ttl=STALE_TTL)
        return None

    # -- negative -------------------------------------------------------------------

    def put_negative(
        self, name: Name, rdtype: RdataType, rcode: int, authority: list[RRset], ttl: float
    ) -> None:
        # RFC 2308 section 5: the negative TTL is the *minimum* of the
        # SOA record's own TTL (what the caller passes) and its MINIMUM
        # field — a zone advertising SOA TTL 3600 but MINIMUM 60 wants
        # its denials forgotten after a minute.  The configured cap
        # still bounds both.
        for rrset in authority:
            if int(rrset.rdtype) == int(RdataType.SOA):
                for rdata in rrset.rdatas:
                    minimum = getattr(rdata, "minimum", None)
                    if minimum is not None:
                        ttl = min(ttl, float(minimum))
        ttl = min(ttl, self.config.negative_ttl_cap)
        now = self._clock.now()
        self._negative[(name, int(rdtype))] = _NegativeEntry(
            rcode=rcode,
            authority=[rrset.copy() for rrset in authority],
            expires_at=now + ttl,
            stored_at=now,
        )
        self._evict_store(self._negative)

    def get_negative(self, name: Name, rdtype: RdataType) -> _NegativeEntry | None:
        entry = self._negative.get((name, int(rdtype)))
        if entry is None:
            return None
        now = self._clock.now()
        if now >= entry.expires_at:
            if not self.config.serve_stale or now >= entry.expires_at + self.config.stale_window:
                del self._negative[(name, int(rdtype))]
            return None
        self.stats.negative_hits += 1
        return entry

    def get_stale_negative(self, name: Name, rdtype: RdataType) -> _NegativeEntry | None:
        """Expired negative entry retained for serve-stale (RFC 8767 also
        applies to NXDOMAIN — the paper's Stale NXDOMAIN Answer (19))."""
        if not self.config.serve_stale:
            return None
        entry = self._negative.get((name, int(rdtype)))
        if entry is None:
            return None
        now = self._clock.now()
        if entry.expires_at <= now < entry.expires_at + self.config.stale_window:
            self.stats.stale_hits += 1
            return entry
        return None

    # -- errors ------------------------------------------------------------------------

    def put_error(self, name: Name, rdtype: RdataType, rcode: int, detail: str = "") -> None:
        self._errors[(name, int(rdtype))] = _ErrorEntry(
            rcode=rcode, expires_at=self._clock.now() + self.config.error_ttl, detail=detail
        )
        self._evict_store(self._errors)

    def get_error(self, name: Name, rdtype: RdataType) -> _ErrorEntry | None:
        entry = self._errors.get((name, int(rdtype)))
        if entry is None:
            return None
        if self._clock.now() >= entry.expires_at:
            del self._errors[(name, int(rdtype))]
            return None
        self.stats.error_hits += 1
        return entry

    # -- bookkeeping -----------------------------------------------------------------------

    def flush(self) -> None:
        self._positive.clear()
        self._negative.clear()
        self._errors.clear()

    def __len__(self) -> int:
        return len(self._positive) + len(self._negative) + len(self._errors)

    def _evict_if_needed(self) -> None:
        self._evict_store(self._positive)

    def _evict_store(self, store: dict) -> None:
        """Bound any of the three stores.  Mass failures (outages, chaos
        runs) would otherwise grow the negative/error stores without
        limit — one entry per failed name, forever."""
        if len(store) <= self.config.max_entries:
            return
        # Drop the entries closest to expiry (cheap approximation of LRU).
        by_expiry = sorted(store.items(), key=lambda item: item[1].expires_at)
        for key, _entry in by_expiry[: len(by_expiry) // 10 or 1]:
            del store[key]
            self.stats.evictions += 1
