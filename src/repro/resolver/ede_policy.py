"""Vendor EDE policy: mapping failure traces and events to INFO-CODEs.

The paper's core result (Section 3.3) is that implementations of
RFC 8914 disagree on *which* extended error describes a given failure,
even though they detect the failure itself consistently.  An
:class:`EdePolicy` captures one vendor's mapping:

* ``reason_codes`` — validation :class:`FailureReason` → INFO-CODEs;
* ``event_codes`` — transport :class:`ResolutionEvent` → INFO-CODEs;
* extra-text templates for the vendors that populate EXTRA-TEXT.

Profiles for the seven tested systems live in
:mod:`repro.resolver.profiles`; their tables are derived from the
paper's Table 4 and verified against it by ``experiments.table4``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..dns.ede import EdeCode
from ..dnssec.trace import (
    EventRecord,
    FailureReason,
    ResolutionEvent,
    ResolutionOutcome,
)


@dataclass(frozen=True)
class EdeEmission:
    """One EDE option to attach to a client response."""

    code: int
    extra_text: str = ""

    def key(self) -> tuple[int, str]:
        return (self.code, self.extra_text)


@dataclass
class EdePolicy:
    """One vendor's RFC 8914 behaviour."""

    name: str
    reason_codes: dict[FailureReason, tuple[int, ...]] = field(default_factory=dict)
    event_codes: dict[ResolutionEvent, tuple[int, ...]] = field(default_factory=dict)
    #: Emit EDE 22 when every authority for some zone was exhausted.
    emit_no_reachable_authority: bool = False
    #: Attach rich EXTRA-TEXT strings (Cloudflare style).
    verbose_extra_text: bool = False
    #: Text attached to EDE 0 emissions (Knot's "LSLC: ..." messages).
    other_text: str = ""
    #: Cap on the number of EDE options attached to one response.
    max_options: int = 8
    #: Resolver-policy INFO-CODEs this vendor emits when local policy
    #: (RPZ-style blocking) intervenes: Forged Answer (4), Blocked (15),
    #: Censored (16), Filtered (17), Prohibited (18).  BIND shipped these
    #: first (paper section 2); the default grants the full set.
    policy_codes: frozenset[int] = frozenset({4, 15, 16, 17, 18})

    def policy_emission(self, info_code: int, reason: str = "") -> EdeEmission | None:
        """The option to attach when local policy produced the answer."""
        if info_code not in self.policy_codes:
            return None
        return EdeEmission(code=info_code, extra_text=reason)

    def emissions(self, outcome: ResolutionOutcome) -> list[EdeEmission]:
        """All EDE options this vendor would attach for ``outcome``."""
        out: list[EdeEmission] = []
        seen: set[tuple[int, str]] = set()

        def push(code: int, text: str = "") -> None:
            emission = EdeEmission(code=code, extra_text=text)
            if emission.key() not in seen and len(out) < self.max_options:
                seen.add(emission.key())
                out.append(emission)

        reason = outcome.validation.reason
        if reason is not None:
            for code in self.reason_codes.get(reason, ()):
                push(code, self._reason_text(code, outcome))
        for warning in outcome.validation.warnings:
            for code in self.reason_codes.get(warning, ()):
                text = ""
                if self.verbose_extra_text and warning is FailureReason.STANDBY_KSK_UNSIGNED:
                    text = "no RRSIG covering a stand-by DNSKEY"
                push(code, text)

        for record in outcome.events:
            for code in self.event_codes.get(record.event, ()):
                push(code, self._event_text(code, record))

        if self.emit_no_reachable_authority and outcome.has_event(
            ResolutionEvent.ALL_SERVERS_FAILED
        ):
            push(int(EdeCode.NO_REACHABLE_AUTHORITY))

        return out

    # -- extra-text rendering --------------------------------------------------------

    def _reason_text(self, code: int, outcome: ResolutionOutcome) -> str:
        if code == int(EdeCode.OTHER) and self.other_text:
            return self.other_text
        if not self.verbose_extra_text:
            return ""
        trace = outcome.validation
        if trace.detail:
            return trace.detail
        if code == int(EdeCode.UNSUPPORTED_DNSKEY_ALGORITHM):
            if trace.key_size is not None:
                return "unsupported key size"
            if trace.reason is FailureReason.ALGO_DEPRECATED:
                return "no supported DNSKEY algorithm"
            if trace.algorithm is not None:
                return f"unsupported DNSKEY algorithm {trace.algorithm}"
        if code == int(EdeCode.UNSUPPORTED_DS_DIGEST_TYPE) and trace.algorithm is not None:
            return f"unsupported DS digest type {trace.algorithm}"
        if code == int(EdeCode.SIGNATURE_EXPIRED) and trace.expired_at is not None:
            return f"signature expired at {trace.expired_at}"
        return ""

    def _event_text(self, code: int, record: EventRecord) -> str:
        if not self.verbose_extra_text:
            return ""
        if code == int(EdeCode.NETWORK_ERROR):
            what = record.detail or "unreachable"
            suffix = f" for {record.qname} {record.rdtype}".rstrip()
            return f"{record.server} {what}{suffix}"
        if code == int(EdeCode.INVALID_DATA):
            server = record.server.split(":")[0]
            return f"Mismatched question from the authoritative server {server}"
        if code == int(EdeCode.OTHER) and record.event is ResolutionEvent.ITERATION_LIMIT_EXCEEDED:
            return "iteration limit exceeded"
        return ""
