"""Iterative (recursive-resolver-side) resolution over the fabric.

Walks referrals from the root hints down to an authoritative answer,
chasing CNAMEs and out-of-bailiwick nameserver addresses, recording a
:class:`ResolutionEvent` for every transport or server anomaly it
observes.  The engine also remembers which servers host which zone so
the DNSSEC validator can fetch DS/DNSKEY/NSEC3PARAM records from the
right place, and whether each delegation was signed (a DS was present)
— the signal behind Cloudflare's ``DNSKEY Missing`` on unreachable
signed zones.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from enum import Enum, auto

from ..dns.message import Message
from ..dns.name import Name
from ..dns.rcode import Rcode
from ..dns.rdata import A, CNAME, NS
from ..dns.rrset import RRset
from ..dns.types import RdataType
from ..dnssec.trace import EventRecord, ResolutionEvent
from ..net.fabric import NetworkFabric, Timeout, TransportError, Unreachable
from ..obs import NULL_OBS, Observability, TraceEventKind
from .resilience import BreakerBook, BreakerConfig, DeadlineBudget
from .server_stats import ServerSelectionConfig, ServerStatsBook


@dataclass
class IterationResult:
    """What came back from walking the tree for one (qname, rdtype)."""

    ok: bool = False
    rcode: int = Rcode.SERVFAIL
    answer: list[RRset] = field(default_factory=list)
    authority: list[RRset] = field(default_factory=list)
    zone_path: list[Name] = field(default_factory=list)
    final_zone: Name | None = None
    aa: bool = False
    #: True when the failing zone's delegation carried a DS record.
    failed_signed_zone: bool = False
    failed_zone: Name | None = None


@dataclass
class EngineConfig:
    source_ip: str = "198.51.100.1"
    timeout: float = 2.0
    retries: int = 1
    max_referrals: int = 32
    max_cname_chain: int = 8
    max_ns_depth: int = 4
    payload: int = 1232
    #: RFC 9156: expose only one extra label per zone while iterating.
    qname_minimization: bool = False
    #: Exponential backoff between retries to one server: the n-th retry
    #: waits ``backoff_base * 2**n`` seconds (capped at ``backoff_max``),
    #: spread by ±``backoff_jitter`` to avoid synchronized retry storms.
    backoff_base: float = 0.4
    backoff_max: float = 3.0
    backoff_jitter: float = 0.25
    #: Unbound-style anti-amplification guard: total upstream queries
    #: one client resolution may spend before it turns into SERVFAIL.
    max_queries_per_resolution: int = 100
    #: Best-server-first selection from SRTT/lameness memory.  Off by
    #: default (referral order, the seed behaviour); automatically
    #: enabled while a chaos policy is installed on the fabric.
    adaptive_server_selection: bool = False
    #: Per-server quality-memory knobs (SRTT smoothing, lame TTL).
    selection: ServerSelectionConfig = field(default_factory=ServerSelectionConfig)
    #: Seed for retry-jitter decisions, so hardened runs replay exactly.
    rng_seed: int = 20230524
    #: Memoize the encoded upstream query wire per (qname, rdtype) and
    #: patch only the message-ID bytes on reuse.  The query for a given
    #: question is constant apart from its ID, so this skips a
    #: ``to_wire`` per upstream send; off by default (seed byte path).
    render_query_cache: bool = False
    #: Opt into the fabric's paved in-process fast path: upstream sends
    #: hand the already-built query Message to the endpoint (skipping
    #: the server-side wire decode) and take back the server's response
    #: Message when it is provably parse-equivalent to the returned
    #: wire (skipping the client-side re-parse).  Wire bytes, timing,
    #: loss, and stats are identical either way; the path falls back to
    #: plain parsing under chaos policies, TCP, or unproven
    #: equivalence.  Off by default (seed byte path).
    paved_fabric: bool = False
    #: Circuit-breaker knobs for the resilience layer.  ``None`` (the
    #: default) disables breakers entirely: no state is kept, no query
    #: is ever short-circuited, and the retry/backoff timing of the
    #: seed behaviour is preserved exactly.
    breaker: BreakerConfig | None = None


@dataclass
class EngineStats:
    """Counters for the hardened failure-handling path."""

    queries: int = 0
    retries: int = 0
    backoff_seconds: float = 0.0
    tcp_fallbacks: int = 0
    mismatched_ids: int = 0
    budget_exhaustions: int = 0
    deadline_exhaustions: int = 0
    breaker_skips: int = 0


@dataclass
class QueryBudget:
    """Total-query allowance for one client resolution (and all the
    sub-resolutions it spawns while chasing NS addresses)."""

    limit: int
    used: int = 0
    reported: bool = False

    def take(self) -> bool:
        if self.used >= self.limit:
            return False
        self.used += 1
        return True

    @property
    def exhausted(self) -> bool:
        return self.used >= self.limit


class _Vet(Enum):
    """Outcome of validating one response against its query."""

    OK = auto()
    RETRY = auto()  # mismatched ID: possibly spoofed/stale, try again
    FAIL = auto()  # give up on this server


class IterativeEngine:
    """Referral-walking resolution core shared by all vendor profiles."""

    def __init__(
        self,
        fabric: NetworkFabric,
        root_hints: dict[str, list[str]] | list[str],
        config: EngineConfig | None = None,
        obs: Observability | None = None,
    ):
        self.fabric = fabric
        self.config = config or EngineConfig()
        self.obs = obs or NULL_OBS
        self._m_upstream = self.obs.counter("repro_engine_upstream_queries_total")
        self._m_rtt = self.obs.histogram("repro_engine_upstream_rtt_virtual_seconds")
        self._m_events = self.obs.counter("repro_engine_transport_events_total")
        self._m_breaker_skips = self.obs.counter("repro_engine_breaker_skips_total")
        if isinstance(root_hints, dict):
            addresses = [addr for addrs in root_hints.values() for addr in addrs]
        else:
            addresses = list(root_hints)
        self._root_servers = addresses
        #: zone apex -> server addresses, learned from referrals.
        self.zone_servers: dict[Name, list[str]] = {Name.root(): list(addresses)}
        #: zone apex -> whether its delegation at the parent included a DS.
        self.zone_signed: dict[Name, bool] = {Name.root(): True}
        #: zone apex -> DNS Error Reporting agent domain (RFC 9567),
        #: learned from Report-Channel options on authoritative answers.
        self.report_channels: dict[Name, Name] = {}
        self._msg_id = 0
        #: Seeded RNG; public so callers can share one stream (message IDs).
        self.rng = random.Random(self.config.rng_seed)
        #: Per-server/per-zone circuit breakers; a no-op book when the
        #: config carries no BreakerConfig (the seed behaviour).
        self.breakers = BreakerBook(fabric.clock, self.config.breaker, obs=self.obs)
        self._query_wire_cache: dict[tuple[Name, int], bytes] | None = (
            {} if self.config.render_query_cache else None
        )
        self.server_stats = ServerStatsBook(
            fabric.clock,
            self.config.selection,
            listener=self.breakers if self.breakers.enabled else None,
        )
        self.stats = EngineStats()

    # -- low-level query ------------------------------------------------------------

    def _note(self, events: list[EventRecord], record: EventRecord) -> None:
        """Record one transport observation: the ``events`` list (the
        EDE-attribution input, exactly as before) plus the observability
        mirror — a virtual-timestamped trace event and a counter."""
        events.append(record)
        if self.obs.enabled:
            self.obs.trace_event_record(record)
            self._m_events.labels(event=record.event.name).inc()

    def _next_id(self) -> int:
        self._msg_id = (self._msg_id + 1) & 0xFFFF
        return self._msg_id

    def _backoff(
        self,
        attempt: int,
        attempts: int,
        deadline: DeadlineBudget | None = None,
    ) -> None:
        """Exponential backoff + jitter before the next retry (if any).

        Under a deadline budget the sleep is clamped to what is left —
        waiting past the client's patience helps nobody.
        """
        if attempt + 1 >= attempts or self.config.backoff_base <= 0:
            return
        delay = min(self.config.backoff_max, self.config.backoff_base * (2 ** attempt))
        jitter = self.config.backoff_jitter
        if jitter:
            delay *= 1 + jitter * (2 * self.rng.random() - 1)
        if deadline is not None:
            delay = min(delay, deadline.remaining())
            if delay <= 0:
                return
        self.stats.retries += 1
        self.stats.backoff_seconds += delay
        self.fabric.clock.sleep(delay)

    def _note_deadline_exhausted(
        self,
        deadline: DeadlineBudget,
        qname: Name,
        rdtype: RdataType,
        events: list[EventRecord],
    ) -> None:
        if deadline.reported:
            return
        deadline.reported = True
        self.stats.deadline_exhaustions += 1
        self._note(events,
            EventRecord(
                ResolutionEvent.DEADLINE_EXHAUSTED,
                qname=qname,
                rdtype=str(rdtype),
                detail="client deadline budget drained",
            )
        )

    def _note_budget_exhausted(
        self,
        budget: QueryBudget,
        qname: Name,
        rdtype: RdataType,
        events: list[EventRecord],
    ) -> None:
        if budget.reported:
            return
        budget.reported = True
        self.stats.budget_exhaustions += 1
        self._note(events,
            EventRecord(
                ResolutionEvent.QUERY_BUDGET_EXCEEDED,
                qname=qname,
                rdtype=str(rdtype),
                detail=f"query budget ({budget.limit}) exhausted",
            )
        )

    def _parse_response(
        self,
        raw: bytes,
        server: str,
        qname: Name,
        rdtype: RdataType,
        events: list[EventRecord],
    ) -> Message | None:
        try:
            return Message.from_wire(raw)
        except Exception:
            self._note(events,
                EventRecord(
                    ResolutionEvent.SERVER_FORMERR,
                    server=f"{server}:53",
                    qname=qname,
                    rdtype=str(rdtype),
                    detail="unparseable response",
                )
            )
            return None

    def _vet_response(
        self,
        query: Message,
        response: Message,
        server: str,
        qname: Name,
        rdtype: RdataType,
        events: list[EventRecord],
    ) -> _Vet:
        """Sanity checks every response must pass, UDP or TCP alike."""
        if response.id != query.id:
            # Spoofed, reordered, or duplicated datagram: never accept,
            # but do not give up on the server either — a fresh query
            # (with a fresh ID) may well succeed.
            self.stats.mismatched_ids += 1
            self._note(events,
                EventRecord(
                    ResolutionEvent.MISMATCHED_ID,
                    server=f"{server}:53",
                    qname=qname,
                    rdtype=str(rdtype),
                    detail=f"response ID {response.id} != query ID {query.id}",
                )
            )
            return _Vet.RETRY
        if not response.question or response.question[0].name != qname:
            self._note(events,
                EventRecord(
                    ResolutionEvent.MISMATCHED_QUESTION,
                    server=f"{server}:53",
                    qname=qname,
                    rdtype=str(rdtype),
                )
            )
            return _Vet.FAIL
        if query.edns is not None and response.edns is None:
            # Pre-EDNS server silently dropped the OPT record instead of
            # answering FORMERR (wild-scan Invalid Data category).
            self._note(events,
                EventRecord(
                    ResolutionEvent.SERVER_NO_EDNS,
                    server=f"{server}:53",
                    qname=qname,
                    rdtype=str(rdtype),
                )
            )
        return _Vet.OK

    _BAD_RCODE_EVENTS = {
        Rcode.REFUSED: ResolutionEvent.SERVER_REFUSED,
        Rcode.SERVFAIL: ResolutionEvent.SERVER_SERVFAIL,
        Rcode.NOTAUTH: ResolutionEvent.SERVER_NOTAUTH,
        Rcode.FORMERR: ResolutionEvent.SERVER_FORMERR,
    }

    def _check_rcode(
        self,
        response: Message,
        server: str,
        qname: Name,
        rdtype: RdataType,
        events: list[EventRecord],
    ) -> bool:
        """True when the RCODE is fatal; records the event and marks the
        server lame so adaptive selection deprioritizes it."""
        if response.rcode not in self._BAD_RCODE_EVENTS:
            return False
        self._note(events,
            EventRecord(
                self._BAD_RCODE_EVENTS[Rcode(response.rcode)],
                server=f"{server}:53",
                qname=qname,
                rdtype=str(rdtype),
                detail=f"rcode={Rcode(response.rcode).name}",
            )
        )
        self.server_stats.note_lame(server)
        return True

    def query_server(
        self,
        server: str,
        qname: Name,
        rdtype: RdataType,
        events: list[EventRecord],
        budget: QueryBudget | None = None,
        deadline: DeadlineBudget | None = None,
    ) -> Message | None:
        """One query (with retries) to one server; None on failure.

        Every attempt uses a fresh message ID; retries back off
        exponentially with jitter; RTTs, timeouts, and lame answers feed
        the per-server quality book.  TCP truncation fallbacks pass
        through exactly the same response validation as UDP.

        With the resilience layer on, an open per-server breaker skips
        the server outright, and a deadline budget shrinks per-attempt
        timeouts (and backoffs) to whatever patience the client has
        left.
        """
        if not self.breakers.allow(server):
            self.stats.breaker_skips += 1
            self._m_breaker_skips.inc()
            self._note(events,
                EventRecord(
                    ResolutionEvent.BREAKER_OPEN,
                    server=f"{server}:53",
                    qname=qname,
                    rdtype=str(rdtype),
                    detail="server breaker open",
                )
            )
            return None
        attempts = 1 + max(0, self.config.retries)
        for attempt in range(attempts):
            if budget is not None and not budget.take():
                self._note_budget_exhausted(budget, qname, rdtype, events)
                return None
            if deadline is not None and deadline.expired:
                self._note_deadline_exhausted(deadline, qname, rdtype, events)
                return None
            timeout = (
                self.config.timeout
                if deadline is None
                else deadline.clamp(self.config.timeout)
            )
            msg_id = self._next_id()
            query = Message.make_query(
                qname,
                rdtype,
                want_dnssec=True,
                recursion_desired=False,
                payload=self.config.payload,
                msg_id=msg_id,
            )
            # The Message itself is still needed (response vetting and
            # the TCP fallback both consume it); only the encode can be
            # memoized, since the wire varies solely in its ID bytes.
            if self._query_wire_cache is None:
                wire = query.to_wire()
            else:
                cache_key = (qname, int(rdtype))
                base = self._query_wire_cache.get(cache_key)
                if base is None:
                    wire = query.to_wire()
                    self._query_wire_cache[cache_key] = wire
                else:
                    patched = bytearray(base)
                    patched[0:2] = msg_id.to_bytes(2, "big")
                    wire = bytes(patched)
            self.stats.queries += 1
            started = self.fabric.clock.now()
            if self.obs.enabled:
                self._m_upstream.labels(transport="udp").inc()
                self.obs.trace_event(
                    TraceEventKind.UPSTREAM_QUERY,
                    server=f"{server}:53", qname=str(qname),
                    rdtype=str(rdtype), transport="udp",
                )
            try:
                raw = self.fabric.send(
                    server,
                    wire,
                    source=self.config.source_ip,
                    timeout=timeout,
                    message=query if self.config.paved_fabric else None,
                )
            except Unreachable:
                self._note(events,
                    EventRecord(
                        ResolutionEvent.SERVER_UNREACHABLE,
                        server=f"{server}:53",
                        qname=qname,
                        rdtype=str(rdtype),
                    )
                )
                self.server_stats.note_lame(server)
                return None  # no point retrying an unroutable address
            except Timeout:
                self._note(events,
                    EventRecord(
                        ResolutionEvent.SERVER_TIMEOUT,
                        server=f"{server}:53",
                        qname=qname,
                        rdtype=str(rdtype),
                        detail="timeout",
                    )
                )
                self.server_stats.note_timeout(server)
                self._backoff(attempt, attempts, deadline)
                continue
            except TransportError:
                return None
            rtt = self.fabric.clock.now() - started
            self.server_stats.note_rtt(server, rtt)
            response = (
                self.fabric.take_paved() if self.config.paved_fabric else None
            )
            if response is None:
                response = self._parse_response(raw, server, qname, rdtype, events)
            if response is None:
                self.server_stats.note_lame(server)
                return None
            if self.obs.enabled:
                self._m_rtt.observe(rtt)
                self.obs.trace_event(
                    TraceEventKind.UPSTREAM_RESPONSE,
                    server=f"{server}:53", rcode=int(response.rcode), rtt=rtt,
                )
            vet = self._vet_response(query, response, server, qname, rdtype, events)
            if vet is _Vet.RETRY:
                self._backoff(attempt, attempts, deadline)
                continue
            if vet is _Vet.FAIL:
                return None
            if response.tc:
                # Truncated: retry the same server over TCP (RFC 7766),
                # revalidating the TCP response like any other.
                if budget is not None and not budget.take():
                    self._note_budget_exhausted(budget, qname, rdtype, events)
                    return None
                self.stats.tcp_fallbacks += 1
                if self.obs.enabled:
                    self._m_upstream.labels(transport="tcp").inc()
                    self.obs.trace_event(
                        TraceEventKind.UPSTREAM_QUERY,
                        server=f"{server}:53", qname=str(qname),
                        rdtype=str(rdtype), transport="tcp",
                    )
                try:
                    raw = self.fabric.send(
                        server, wire, source=self.config.source_ip,
                        timeout=(
                            self.config.timeout
                            if deadline is None
                            else deadline.clamp(self.config.timeout)
                        ),
                        transport="tcp",
                    )
                except TransportError:
                    self._note(events,
                        EventRecord(
                            ResolutionEvent.SERVER_TIMEOUT,
                            server=f"{server}:53",
                            qname=qname,
                            rdtype=str(rdtype),
                            detail="tcp retry failed",
                        )
                    )
                    self.server_stats.note_timeout(server)
                    self._backoff(attempt, attempts, deadline)
                    continue
                response = self._parse_response(raw, server, qname, rdtype, events)
                if response is None:
                    self.server_stats.note_lame(server)
                    return None
                vet = self._vet_response(query, response, server, qname, rdtype, events)
                if vet is _Vet.RETRY:
                    self._backoff(attempt, attempts, deadline)
                    continue
                if vet is _Vet.FAIL:
                    return None
            if self._check_rcode(response, server, qname, rdtype, events):
                return None
            return response
        return None

    def _ordered_servers(self, servers: list[str]) -> list[str]:
        """Referral order normally; best-server-first when adaptive
        selection is on (explicitly, or implicitly under chaos)."""
        adaptive = self.config.adaptive_server_selection or (
            getattr(self.fabric, "chaos", None) is not None
        )
        if not adaptive:
            return list(servers)
        return self.server_stats.order(servers)

    def query_zone(
        self,
        zone: Name,
        qname: Name,
        rdtype: RdataType,
        events: list[EventRecord],
        budget: QueryBudget | None = None,
        deadline: DeadlineBudget | None = None,
    ) -> Message | None:
        """Query every known server for ``zone`` until one answers usefully.

        The zone-level circuit breaker wraps the whole server sweep: a
        zone whose every server just failed opens after the configured
        threshold, and an open zone breaker answers None immediately —
        the caller falls straight through to serve-stale instead of
        re-timing-out the same dead delegation.
        """
        zone_key = f"zone/{zone}"
        if not self.breakers.allow(zone_key):
            self.stats.breaker_skips += 1
            self._m_breaker_skips.inc()
            self._note(events,
                EventRecord(
                    ResolutionEvent.BREAKER_OPEN,
                    qname=qname,
                    rdtype=str(rdtype),
                    detail=f"zone breaker open: {zone}",
                )
            )
            return None
        servers = self.zone_servers.get(zone, [])
        swept_all = True
        for server in self._ordered_servers(servers):
            if budget is not None and budget.exhausted:
                self._note_budget_exhausted(budget, qname, rdtype, events)
                swept_all = False
                break
            if deadline is not None and deadline.expired:
                self._note_deadline_exhausted(deadline, qname, rdtype, events)
                swept_all = False
                break
            response = self.query_server(server, qname, rdtype, events, budget, deadline)
            if response is not None:
                self.breakers.on_success(zone_key)
                if response.edns is not None:
                    from .error_reporting import REPORT_CHANNEL, ReportChannelOption

                    option = response.edns.option(REPORT_CHANNEL)
                    if isinstance(option, ReportChannelOption):
                        self.report_channels[zone] = option.agent_domain
                return response
        if swept_all:
            # Only a full, genuinely failed sweep counts against the
            # zone: running out of budget/deadline says nothing about
            # the zone's health (the per-server books saw the details).
            self.breakers.on_failure(zone_key)
        return None

    def report_channel_for(self, qname: Name) -> Name | None:
        """Deepest learned reporting agent covering ``qname``."""
        current = qname
        while True:
            agent = self.report_channels.get(current)
            if agent is not None:
                return agent
            if current.is_root():
                return None
            current = current.parent()

    # -- full iteration -------------------------------------------------------------------

    def resolve(
        self,
        qname: Name,
        rdtype: RdataType,
        events: list[EventRecord],
        depth: int = 0,
        budget: QueryBudget | None = None,
        deadline: DeadlineBudget | None = None,
    ) -> IterationResult:
        if budget is None:
            budget = QueryBudget(limit=self.config.max_queries_per_resolution)
        result = IterationResult()
        current_zone = self._deepest_known_zone(qname)
        result.zone_path = self._path_to(current_zone)
        target = qname
        chained_answers: list[RRset] = []
        cname_hops = 0

        min_extra_labels = 1  # qname-minimization probe depth below the cut
        for _ in range(self.config.max_referrals):
            probe = target
            if (
                self.config.qname_minimization
                and target.is_strict_subdomain_of(current_zone)
            ):
                depth = min(
                    current_zone.label_count() + min_extra_labels,
                    target.label_count(),
                )
                _prefix, probe = target.split(depth)
            response = self.query_zone(
                current_zone, probe, rdtype, events, budget, deadline
            )
            if response is None:
                self._note(events,
                    EventRecord(
                        ResolutionEvent.ALL_SERVERS_FAILED,
                        qname=target,
                        rdtype=str(rdtype),
                        detail=str(current_zone),
                    )
                )
                result.ok = False
                result.rcode = Rcode.SERVFAIL
                result.failed_zone = current_zone
                result.failed_signed_zone = self.zone_signed.get(current_zone, False)
                return result

            answer_rrset = response.find_answer(target, rdtype)
            cname_rrset = response.find_answer(target, RdataType.CNAME)

            if answer_rrset is not None or (
                rdtype == RdataType.CNAME and cname_rrset is not None
            ):
                result.ok = True
                result.rcode = response.rcode
                result.answer = chained_answers + list(response.answer)
                result.authority = list(response.authority)
                result.final_zone = current_zone
                result.aa = response.aa
                return result

            if cname_rrset is not None:
                cname_hops += 1
                if cname_hops > self.config.max_cname_chain:
                    self._note(events,
                        EventRecord(
                            ResolutionEvent.ITERATION_LIMIT_EXCEEDED,
                            qname=target,
                            detail="CNAME chain too long",
                        )
                    )
                    result.rcode = Rcode.SERVFAIL
                    return result
                self._note(events,
                    EventRecord(ResolutionEvent.CNAME_CHASED, qname=target)
                )
                chained_answers.extend(rrset.copy() for rrset in response.answer)
                rdata = cname_rrset.rdatas[0]
                assert isinstance(rdata, CNAME)
                target = rdata.target
                current_zone = self._deepest_known_zone(target)
                result.zone_path = self._path_to(current_zone)
                continue

            referral = self._extract_referral(response, current_zone, target)
            if referral is not None:
                child_zone, servers, ds_present = referral
                if not servers:
                    servers = self._resolve_ns_addresses(
                        response, child_zone, events, depth, budget, deadline
                    )
                if not servers:
                    self._note(events,
                        EventRecord(
                            ResolutionEvent.ALL_SERVERS_FAILED,
                            qname=target,
                            detail=f"no addresses for {child_zone} nameservers",
                        )
                    )
                    result.rcode = Rcode.SERVFAIL
                    result.failed_zone = child_zone
                    result.failed_signed_zone = ds_present
                    return result
                self.zone_servers[child_zone] = servers
                self.zone_signed[child_zone] = ds_present
                current_zone = child_zone
                result.zone_path.append(child_zone)
                min_extra_labels = 1
                continue

            if probe != target and response.rcode == Rcode.NOERROR:
                # Minimized probe hit an empty non-terminal (or an apex
                # record): expose one more label and ask the same zone.
                min_extra_labels += 1
                continue

            # Authoritative negative (NXDOMAIN or NODATA), or a dead end.
            result.ok = response.aa or response.rcode == Rcode.NXDOMAIN
            result.rcode = response.rcode
            result.answer = chained_answers + list(response.answer)
            result.authority = list(response.authority)
            result.final_zone = current_zone
            result.aa = response.aa
            return result

        self._note(events,
            EventRecord(
                ResolutionEvent.ITERATION_LIMIT_EXCEEDED,
                qname=qname,
                detail="iteration limit exceeded",
            )
        )
        result.rcode = Rcode.SERVFAIL
        return result

    # -- helpers ------------------------------------------------------------------------------

    def _deepest_known_zone(self, qname: Name) -> Name:
        """Deepest zone with cached NS addresses above ``qname``.

        Real resolvers keep delegation (NS) records cached; starting each
        resolution at the deepest cached cut instead of the root is what
        keeps root/TLD query volume sane during a 300k-domain scan.
        """
        # Walk the ancestors of qname (cheap: a handful of dict probes)
        # rather than scanning the delegation cache, which can hold one
        # entry per scanned domain.
        if qname.is_root() or qname.label_count() < 2:
            return Name.root()
        current = qname.parent()
        while current.label_count() > 0 and not current.is_root():
            # Never start *at* the target name itself: its servers may be
            # the broken thing under test; re-walk from the parent.
            if current in self.zone_servers:
                return current
            current = current.parent()
        return Name.root()

    def _path_to(self, zone: Name) -> list[Name]:
        """All known ancestor zones of ``zone``, root first."""
        path = []
        current = zone
        while True:
            if current in self.zone_servers:
                path.append(current)
            if current.is_root():
                break
            current = current.parent()
        path.reverse()
        return path

    def _extract_referral(
        self, response: Message, current_zone: Name, target: Name
    ) -> tuple[Name, list[str], bool] | None:
        ns_rrset: RRset | None = None
        for rrset in response.authority:
            if (
                rrset.rdtype == RdataType.NS
                and rrset.name.is_strict_subdomain_of(current_zone)
                and target.is_subdomain_of(rrset.name)
            ):
                ns_rrset = rrset
                break
        if ns_rrset is None:
            return None
        ds_present = any(
            rrset.rdtype == RdataType.DS and rrset.name == ns_rrset.name
            for rrset in response.authority
        )
        ns_targets = {
            rdata.target for rdata in ns_rrset.rdatas if isinstance(rdata, NS)
        }
        glue: list[str] = []
        for rrset in response.additional:
            if rrset.name in ns_targets and rrset.rdtype in (RdataType.A, RdataType.AAAA):
                for rdata in rrset.rdatas:
                    address = getattr(rdata, "address", None)
                    if address is not None:
                        glue.append(address)
        return ns_rrset.name, glue, ds_present

    def _resolve_ns_addresses(
        self,
        response: Message,
        child_zone: Name,
        events: list[EventRecord],
        depth: int,
        budget: QueryBudget | None = None,
        deadline: DeadlineBudget | None = None,
    ) -> list[str]:
        """Chase out-of-bailiwick NS names (bounded recursion); the
        sub-resolutions spend from the same query budget."""
        if depth >= self.config.max_ns_depth:
            return []
        addresses: list[str] = []
        for rrset in response.authority:
            if rrset.rdtype != RdataType.NS or rrset.name != child_zone:
                continue
            for rdata in rrset.rdatas:
                if not isinstance(rdata, NS):
                    continue
                if budget is not None and budget.exhausted:
                    break
                sub_events: list[EventRecord] = []
                sub = self.resolve(
                    rdata.target, RdataType.A, sub_events, depth + 1, budget, deadline
                )
                events.extend(sub_events)
                if sub.ok:
                    for answer in sub.answer:
                        if answer.rdtype == RdataType.A:
                            for a_rdata in answer.rdatas:
                                if isinstance(a_rdata, A):
                                    addresses.append(a_rdata.address)
        return addresses
