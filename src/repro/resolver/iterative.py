"""Iterative (recursive-resolver-side) resolution over the fabric.

Walks referrals from the root hints down to an authoritative answer,
chasing CNAMEs and out-of-bailiwick nameserver addresses, recording a
:class:`ResolutionEvent` for every transport or server anomaly it
observes.  The engine also remembers which servers host which zone so
the DNSSEC validator can fetch DS/DNSKEY/NSEC3PARAM records from the
right place, and whether each delegation was signed (a DS was present)
— the signal behind Cloudflare's ``DNSKEY Missing`` on unreachable
signed zones.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..dns.message import Message
from ..dns.name import Name
from ..dns.rcode import Rcode
from ..dns.rdata import A, CNAME, NS
from ..dns.rrset import RRset
from ..dns.types import RdataType
from ..dnssec.trace import EventRecord, ResolutionEvent
from ..net.fabric import NetworkFabric, Timeout, TransportError, Unreachable


@dataclass
class IterationResult:
    """What came back from walking the tree for one (qname, rdtype)."""

    ok: bool = False
    rcode: int = Rcode.SERVFAIL
    answer: list[RRset] = field(default_factory=list)
    authority: list[RRset] = field(default_factory=list)
    zone_path: list[Name] = field(default_factory=list)
    final_zone: Name | None = None
    aa: bool = False
    #: True when the failing zone's delegation carried a DS record.
    failed_signed_zone: bool = False
    failed_zone: Name | None = None


@dataclass
class EngineConfig:
    source_ip: str = "198.51.100.1"
    timeout: float = 2.0
    retries: int = 1
    max_referrals: int = 32
    max_cname_chain: int = 8
    max_ns_depth: int = 4
    payload: int = 1232
    #: RFC 9156: expose only one extra label per zone while iterating.
    qname_minimization: bool = False


class IterativeEngine:
    """Referral-walking resolution core shared by all vendor profiles."""

    def __init__(
        self,
        fabric: NetworkFabric,
        root_hints: dict[str, list[str]] | list[str],
        config: EngineConfig | None = None,
    ):
        self.fabric = fabric
        self.config = config or EngineConfig()
        if isinstance(root_hints, dict):
            addresses = [addr for addrs in root_hints.values() for addr in addrs]
        else:
            addresses = list(root_hints)
        self._root_servers = addresses
        #: zone apex -> server addresses, learned from referrals.
        self.zone_servers: dict[Name, list[str]] = {Name.root(): list(addresses)}
        #: zone apex -> whether its delegation at the parent included a DS.
        self.zone_signed: dict[Name, bool] = {Name.root(): True}
        #: zone apex -> DNS Error Reporting agent domain (RFC 9567),
        #: learned from Report-Channel options on authoritative answers.
        self.report_channels: dict[Name, Name] = {}
        self._msg_id = 0

    # -- low-level query ------------------------------------------------------------

    def _next_id(self) -> int:
        self._msg_id = (self._msg_id + 1) & 0xFFFF
        return self._msg_id

    def query_server(
        self,
        server: str,
        qname: Name,
        rdtype: RdataType,
        events: list[EventRecord],
    ) -> Message | None:
        """One query (with retries) to one server; None on failure."""
        query = Message.make_query(
            qname,
            rdtype,
            want_dnssec=True,
            recursion_desired=False,
            payload=self.config.payload,
            msg_id=self._next_id(),
        )
        wire = query.to_wire()
        attempts = 1 + self.config.retries
        for attempt in range(attempts):
            try:
                raw = self.fabric.send(
                    server, wire, source=self.config.source_ip, timeout=self.config.timeout
                )
            except Unreachable:
                events.append(
                    EventRecord(
                        ResolutionEvent.SERVER_UNREACHABLE,
                        server=f"{server}:53",
                        qname=qname,
                        rdtype=str(rdtype),
                    )
                )
                return None  # no point retrying an unroutable address
            except Timeout:
                events.append(
                    EventRecord(
                        ResolutionEvent.SERVER_TIMEOUT,
                        server=f"{server}:53",
                        qname=qname,
                        rdtype=str(rdtype),
                        detail="timeout",
                    )
                )
                continue
            except TransportError:
                return None
            try:
                response = Message.from_wire(raw)
            except Exception:
                events.append(
                    EventRecord(
                        ResolutionEvent.SERVER_FORMERR,
                        server=f"{server}:53",
                        qname=qname,
                        rdtype=str(rdtype),
                        detail="unparseable response",
                    )
                )
                return None
            if response.id != query.id:
                continue
            if not response.question or response.question[0].name != qname:
                events.append(
                    EventRecord(
                        ResolutionEvent.MISMATCHED_QUESTION,
                        server=f"{server}:53",
                        qname=qname,
                        rdtype=str(rdtype),
                    )
                )
                return None
            if query.edns is not None and response.edns is None:
                # Pre-EDNS server silently dropped the OPT record instead of
                # answering FORMERR (wild-scan Invalid Data category).
                events.append(
                    EventRecord(
                        ResolutionEvent.SERVER_NO_EDNS,
                        server=f"{server}:53",
                        qname=qname,
                        rdtype=str(rdtype),
                    )
                )
            if response.tc:
                # Truncated: retry the same server over TCP (RFC 7766).
                try:
                    raw = self.fabric.send(
                        server, wire, source=self.config.source_ip,
                        timeout=self.config.timeout, transport="tcp",
                    )
                    response = Message.from_wire(raw)
                except TransportError:
                    events.append(
                        EventRecord(
                            ResolutionEvent.SERVER_TIMEOUT,
                            server=f"{server}:53",
                            qname=qname,
                            rdtype=str(rdtype),
                            detail="tcp retry failed",
                        )
                    )
                    continue
            bad_rcode_events = {
                Rcode.REFUSED: ResolutionEvent.SERVER_REFUSED,
                Rcode.SERVFAIL: ResolutionEvent.SERVER_SERVFAIL,
                Rcode.NOTAUTH: ResolutionEvent.SERVER_NOTAUTH,
                Rcode.FORMERR: ResolutionEvent.SERVER_FORMERR,
            }
            if response.rcode in bad_rcode_events:
                events.append(
                    EventRecord(
                        bad_rcode_events[Rcode(response.rcode)],
                        server=f"{server}:53",
                        qname=qname,
                        rdtype=str(rdtype),
                        detail=f"rcode={Rcode(response.rcode).name}",
                    )
                )
                return None
            return response
        return None

    def query_zone(
        self,
        zone: Name,
        qname: Name,
        rdtype: RdataType,
        events: list[EventRecord],
    ) -> Message | None:
        """Query every known server for ``zone`` until one answers usefully."""
        servers = self.zone_servers.get(zone, [])
        for server in servers:
            response = self.query_server(server, qname, rdtype, events)
            if response is not None:
                if response.edns is not None:
                    from .error_reporting import REPORT_CHANNEL, ReportChannelOption

                    option = response.edns.option(REPORT_CHANNEL)
                    if isinstance(option, ReportChannelOption):
                        self.report_channels[zone] = option.agent_domain
                return response
        return None

    def report_channel_for(self, qname: Name) -> Name | None:
        """Deepest learned reporting agent covering ``qname``."""
        current = qname
        while True:
            agent = self.report_channels.get(current)
            if agent is not None:
                return agent
            if current.is_root():
                return None
            current = current.parent()

    # -- full iteration -------------------------------------------------------------------

    def resolve(
        self,
        qname: Name,
        rdtype: RdataType,
        events: list[EventRecord],
        depth: int = 0,
    ) -> IterationResult:
        result = IterationResult()
        current_zone = self._deepest_known_zone(qname)
        result.zone_path = self._path_to(current_zone)
        target = qname
        chained_answers: list[RRset] = []
        cname_hops = 0

        min_extra_labels = 1  # qname-minimization probe depth below the cut
        for _ in range(self.config.max_referrals):
            probe = target
            if (
                self.config.qname_minimization
                and target.is_strict_subdomain_of(current_zone)
            ):
                depth = min(
                    current_zone.label_count() + min_extra_labels,
                    target.label_count(),
                )
                _prefix, probe = target.split(depth)
            response = self.query_zone(current_zone, probe, rdtype, events)
            if response is None:
                events.append(
                    EventRecord(
                        ResolutionEvent.ALL_SERVERS_FAILED,
                        qname=target,
                        rdtype=str(rdtype),
                        detail=str(current_zone),
                    )
                )
                result.ok = False
                result.rcode = Rcode.SERVFAIL
                result.failed_zone = current_zone
                result.failed_signed_zone = self.zone_signed.get(current_zone, False)
                return result

            answer_rrset = response.find_answer(target, rdtype)
            cname_rrset = response.find_answer(target, RdataType.CNAME)

            if answer_rrset is not None or (
                rdtype == RdataType.CNAME and cname_rrset is not None
            ):
                result.ok = True
                result.rcode = response.rcode
                result.answer = chained_answers + list(response.answer)
                result.authority = list(response.authority)
                result.final_zone = current_zone
                result.aa = response.aa
                return result

            if cname_rrset is not None:
                cname_hops += 1
                if cname_hops > self.config.max_cname_chain:
                    events.append(
                        EventRecord(
                            ResolutionEvent.ITERATION_LIMIT_EXCEEDED,
                            qname=target,
                            detail="CNAME chain too long",
                        )
                    )
                    result.rcode = Rcode.SERVFAIL
                    return result
                events.append(
                    EventRecord(ResolutionEvent.CNAME_CHASED, qname=target)
                )
                chained_answers.extend(rrset.copy() for rrset in response.answer)
                rdata = cname_rrset.rdatas[0]
                assert isinstance(rdata, CNAME)
                target = rdata.target
                current_zone = self._deepest_known_zone(target)
                result.zone_path = self._path_to(current_zone)
                continue

            referral = self._extract_referral(response, current_zone, target)
            if referral is not None:
                child_zone, servers, ds_present = referral
                if not servers:
                    servers = self._resolve_ns_addresses(response, child_zone, events, depth)
                if not servers:
                    events.append(
                        EventRecord(
                            ResolutionEvent.ALL_SERVERS_FAILED,
                            qname=target,
                            detail=f"no addresses for {child_zone} nameservers",
                        )
                    )
                    result.rcode = Rcode.SERVFAIL
                    result.failed_zone = child_zone
                    result.failed_signed_zone = ds_present
                    return result
                self.zone_servers[child_zone] = servers
                self.zone_signed[child_zone] = ds_present
                current_zone = child_zone
                result.zone_path.append(child_zone)
                min_extra_labels = 1
                continue

            if probe != target and response.rcode == Rcode.NOERROR:
                # Minimized probe hit an empty non-terminal (or an apex
                # record): expose one more label and ask the same zone.
                min_extra_labels += 1
                continue

            # Authoritative negative (NXDOMAIN or NODATA), or a dead end.
            result.ok = response.aa or response.rcode == Rcode.NXDOMAIN
            result.rcode = response.rcode
            result.answer = chained_answers + list(response.answer)
            result.authority = list(response.authority)
            result.final_zone = current_zone
            result.aa = response.aa
            return result

        events.append(
            EventRecord(
                ResolutionEvent.ITERATION_LIMIT_EXCEEDED,
                qname=qname,
                detail="iteration limit exceeded",
            )
        )
        result.rcode = Rcode.SERVFAIL
        return result

    # -- helpers ------------------------------------------------------------------------------

    def _deepest_known_zone(self, qname: Name) -> Name:
        """Deepest zone with cached NS addresses above ``qname``.

        Real resolvers keep delegation (NS) records cached; starting each
        resolution at the deepest cached cut instead of the root is what
        keeps root/TLD query volume sane during a 300k-domain scan.
        """
        # Walk the ancestors of qname (cheap: a handful of dict probes)
        # rather than scanning the delegation cache, which can hold one
        # entry per scanned domain.
        if qname.is_root() or qname.label_count() < 2:
            return Name.root()
        current = qname.parent()
        while current.label_count() > 0 and not current.is_root():
            # Never start *at* the target name itself: its servers may be
            # the broken thing under test; re-walk from the parent.
            if current in self.zone_servers:
                return current
            current = current.parent()
        return Name.root()

    def _path_to(self, zone: Name) -> list[Name]:
        """All known ancestor zones of ``zone``, root first."""
        path = []
        current = zone
        while True:
            if current in self.zone_servers:
                path.append(current)
            if current.is_root():
                break
            current = current.parent()
        path.reverse()
        return path

    def _extract_referral(
        self, response: Message, current_zone: Name, target: Name
    ) -> tuple[Name, list[str], bool] | None:
        ns_rrset: RRset | None = None
        for rrset in response.authority:
            if (
                rrset.rdtype == RdataType.NS
                and rrset.name.is_strict_subdomain_of(current_zone)
                and target.is_subdomain_of(rrset.name)
            ):
                ns_rrset = rrset
                break
        if ns_rrset is None:
            return None
        ds_present = any(
            rrset.rdtype == RdataType.DS and rrset.name == ns_rrset.name
            for rrset in response.authority
        )
        ns_targets = {
            rdata.target for rdata in ns_rrset.rdatas if isinstance(rdata, NS)
        }
        glue: list[str] = []
        for rrset in response.additional:
            if rrset.name in ns_targets and rrset.rdtype in (RdataType.A, RdataType.AAAA):
                for rdata in rrset.rdatas:
                    address = getattr(rdata, "address", None)
                    if address is not None:
                        glue.append(address)
        return ns_rrset.name, glue, ds_present

    def _resolve_ns_addresses(
        self,
        response: Message,
        child_zone: Name,
        events: list[EventRecord],
        depth: int,
    ) -> list[str]:
        """Chase out-of-bailiwick NS names (bounded recursion)."""
        if depth >= self.config.max_ns_depth:
            return []
        addresses: list[str] = []
        for rrset in response.authority:
            if rrset.rdtype != RdataType.NS or rrset.name != child_zone:
                continue
            for rdata in rrset.rdatas:
                if not isinstance(rdata, NS):
                    continue
                sub_events: list[EventRecord] = []
                sub = self.resolve(rdata.target, RdataType.A, sub_events, depth + 1)
                events.extend(sub_events)
                if sub.ok:
                    for answer in sub.answer:
                        if answer.rdtype == RdataType.A:
                            for a_rdata in answer.rdatas:
                                if isinstance(a_rdata, A):
                                    addresses.append(a_rdata.address)
        return addresses
