"""Stub resolver: the client side of the paper's measurements.

Sends recursive queries to a resolver endpoint over the fabric (the way
the paper's scanner queried 1.1.1.1) and decodes the response into a
compact :class:`StubAnswer` carrying the RCODE, addresses, and EDE
options — the exact fields the scan records.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..dns.ede import ExtendedError
from ..dns.message import Message
from ..dns.name import Name
from ..dns.rcode import Rcode
from ..dns.types import RdataType
from ..net.fabric import NetworkFabric, TransportError


@dataclass
class StubAnswer:
    """Decoded response as a measurement record."""

    qname: str
    rdtype: str
    rcode: int | None = None  # None when the resolver itself was unreachable
    addresses: list[str] = field(default_factory=list)
    ede: list[ExtendedError] = field(default_factory=list)
    ad: bool = False
    transport_error: str = ""

    @property
    def ede_codes(self) -> tuple[int, ...]:
        return tuple(sorted({option.info_code for option in self.ede}))

    @property
    def ok(self) -> bool:
        return self.rcode == Rcode.NOERROR

    def to_record(self) -> dict:
        """NDJSON-style record, mirroring zdns output fields."""
        return {
            "name": self.qname,
            "type": self.rdtype,
            "rcode": Rcode(self.rcode).name if self.rcode is not None else None,
            "answers": list(self.addresses),
            "ede": [
                {"info_code": option.info_code, "extra_text": option.extra_text}
                for option in self.ede
            ],
            "ad": self.ad,
            "error": self.transport_error,
        }


class StubResolver:
    """Client that queries one recursive resolver over the fabric."""

    def __init__(
        self,
        fabric: NetworkFabric,
        server_address: str,
        source_ip: str = "203.0.113.99",
        timeout: float = 5.0,
        rng_seed: int = 0x5707,
    ):
        self.fabric = fabric
        self.server_address = server_address
        self.source_ip = source_ip
        self.timeout = timeout
        self._rng = random.Random(rng_seed)

    def query(
        self,
        qname: Name | str,
        rdtype: RdataType | str = RdataType.A,
        want_dnssec: bool = False,
    ) -> StubAnswer:
        if isinstance(qname, str):
            qname = Name.from_text(qname)
        rdtype = RdataType.make(rdtype)
        answer = StubAnswer(qname=str(qname), rdtype=str(rdtype))
        query = Message.make_query(
            qname, rdtype, want_dnssec=want_dnssec, rng=self._rng
        )
        try:
            raw = self.fabric.send(
                self.server_address,
                query.to_wire(),
                source=self.source_ip,
                timeout=self.timeout,
            )
        except TransportError as exc:
            answer.transport_error = type(exc).__name__.lower()
            return answer
        response = Message.from_wire(raw)
        answer.rcode = response.rcode
        answer.ad = response.ad
        answer.ede = list(response.extended_errors)
        for rrset in response.answer:
            if rrset.match(qname, rdtype) or rrset.rdtype == rdtype:
                for rdata in rrset.rdatas:
                    address = getattr(rdata, "address", None)
                    if address is not None:
                        answer.addresses.append(address)
        return answer
