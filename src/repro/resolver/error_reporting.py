"""DNS Error Reporting (draft-ietf-dnsop-dns-error-reporting / RFC 9567).

The paper's Section 2 points at this draft as the flagship EDE-based
follow-on: authoritative servers advertise a *monitoring agent* via the
EDNS0 Report-Channel option, and resolvers that hit a resolution
failure tell the agent by resolving a specially encoded query name —
the query itself is the report::

    _er.<qtype>.<qname>.<info-code>._er.<agent-domain>   TXT

Implemented here: the Report-Channel option (code 18), the resolver-side
:class:`ErrorReporter` (with the draft's per-failure deduplication so an
agent is not flooded), and the agent-side decoding plus an in-memory
:class:`ReportingAgent` server that collects reports.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..dns.edns import EdnsOption
from ..dns.message import Message
from ..dns.name import Name
from ..dns.rcode import Rcode
from ..dns.rdata import TXT
from ..dns.rrset import RRset
from ..dns.types import RdataType
from ..dns.wire import WireReader, WireWriter
from ..net.clock import Clock

#: EDNS0 OPTION-CODE assigned to Report-Channel.
REPORT_CHANNEL = 18

_ER_LABEL = b"_er"


@dataclass(frozen=True)
class ReportChannelOption(EdnsOption):
    """EDNS0 Report-Channel: the zone's monitoring-agent domain."""

    code: int = REPORT_CHANNEL
    data: bytes = b""
    agent_domain: Name = Name.root()

    @classmethod
    def make(cls, agent_domain: Name | str) -> "ReportChannelOption":
        if isinstance(agent_domain, str):
            agent_domain = Name.from_text(agent_domain)
        return cls(agent_domain=agent_domain)

    def to_wire_data(self) -> bytes:
        # The agent domain is encoded as an uncompressed wire name.
        writer = WireWriter(enable_compression=False)
        writer.write_name(self.agent_domain, compress=False)
        return writer.getvalue()

    @classmethod
    def from_wire_data(cls, data: bytes) -> "ReportChannelOption":
        return cls(agent_domain=WireReader(data).read_name())


EdnsOption.register(REPORT_CHANNEL, ReportChannelOption.from_wire_data)


def encode_report_qname(
    qname: Name, rdtype: RdataType, info_code: int, agent: Name
) -> Name:
    """Build the reporting query name per the specification."""
    labels: list[bytes] = [_ER_LABEL, str(int(rdtype)).encode()]
    labels.extend(label for label in qname.labels if label != b"")
    labels.append(str(int(info_code)).encode())
    labels.append(_ER_LABEL)
    return Name(tuple(labels) + tuple(agent.labels))


@dataclass(frozen=True)
class DecodedReport:
    """A report reconstructed from an ``_er.`` query name."""

    qname: Name
    rdtype: int
    info_code: int


def decode_report_qname(report_name: Name, agent: Name) -> DecodedReport | None:
    """Inverse of :func:`encode_report_qname`; None when malformed."""
    if not report_name.is_strict_subdomain_of(agent):
        return None
    inner = report_name.relativize(agent).labels
    if len(inner) < 4 or inner[0] != _ER_LABEL or inner[-1] != _ER_LABEL:
        return None
    try:
        rdtype = int(inner[1])
        info_code = int(inner[-2])
    except ValueError:
        return None
    qname_labels = inner[2:-2]
    if not qname_labels:
        return None
    return DecodedReport(
        qname=Name(tuple(qname_labels) + (b"",)),
        rdtype=rdtype,
        info_code=info_code,
    )


@dataclass
class ReporterStats:
    reports_sent: int = 0
    suppressed_duplicates: int = 0
    failed: int = 0


class ErrorReporter:
    """Resolver-side agent notification with draft-mandated dedup."""

    def __init__(
        self,
        clock: Clock,
        dedup_window: float = 86_400.0,
        rng_seed: int = 0x9567,
    ):
        self._clock = clock
        self._dedup_window = dedup_window
        self._rng = random.Random(rng_seed)
        self._recent: dict[tuple[Name, int, int, Name], float] = {}
        self.stats = ReporterStats()

    def should_report(
        self, qname: Name, rdtype: RdataType, info_code: int, agent: Name
    ) -> bool:
        """False when the same failure was reported within the window."""
        key = (qname, int(rdtype), int(info_code), agent)
        now = self._clock.now()
        last = self._recent.get(key)
        if last is not None and now - last < self._dedup_window:
            self.stats.suppressed_duplicates += 1
            return False
        self._recent[key] = now
        return True

    def build_report_query(
        self, qname: Name, rdtype: RdataType, info_code: int, agent: Name
    ) -> Message:
        report_name = encode_report_qname(qname, rdtype, info_code, agent)
        # Reports are plain TXT lookups without DO (nothing to validate).
        return Message.make_query(
            report_name, RdataType.TXT, want_dnssec=False, rng=self._rng
        )


@dataclass
class ReportRecord:
    """One received report, as the agent stores it."""

    qname: Name
    rdtype: int
    info_code: int
    received_at: float
    reporter: str = ""


class ReportingAgent:
    """Authoritative endpoint for an agent domain; collects ``_er`` reports."""

    def __init__(self, agent_domain: Name | str, clock: Clock):
        if isinstance(agent_domain, str):
            agent_domain = Name.from_text(agent_domain)
        self.agent_domain = agent_domain
        self._clock = clock
        self.reports: list[ReportRecord] = []
        self.malformed = 0

    def handle_datagram(self, wire: bytes, source: str) -> bytes | None:
        try:
            query = Message.from_wire(wire)
        except Exception:
            return Message(rcode=Rcode.FORMERR, qr=True).to_wire()
        response = self.handle_query(query, source)
        return response.to_wire()

    def handle_query(self, query: Message, source: str = "") -> Message:
        response = query.make_response(recursion_available=False)
        response.aa = True
        if not query.question:
            response.rcode = Rcode.FORMERR
            return response
        question = query.question[0]
        decoded = decode_report_qname(question.name, self.agent_domain)
        if decoded is None:
            self.malformed += 1
            response.rcode = Rcode.NXDOMAIN
            return response
        self.reports.append(
            ReportRecord(
                qname=decoded.qname,
                rdtype=decoded.rdtype,
                info_code=decoded.info_code,
                received_at=self._clock.now(),
                reporter=source,
            )
        )
        # The draft answers with any NOERROR response; a TXT ack is common.
        response.answer.append(
            RRset.of(
                question.name, RdataType.TXT,
                TXT.from_text_value("report received"), ttl=1,
            )
        )
        return response

    def reports_by_code(self) -> dict[int, int]:
        counts: dict[int, int] = {}
        for record in self.reports:
            counts[record.info_code] = counts.get(record.info_code, 0) + 1
        return dict(sorted(counts.items(), key=lambda kv: -kv[1]))
