"""The ten popular public resolvers of the paper's Section 3.2.

The paper asked ten large public DNS services to resolve one domain per
testbed group and kept the three that returned Extended DNS Errors (as
of May 2023): Cloudflare DNS, Quad9, and OpenDNS.  This module models
the other seven as EDE-silent profiles — they resolve and validate
perfectly well, they just never attach INFO-CODEs — so the selection
experiment itself (``probe_ede_support``) can be reproduced.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..dns.types import RdataType
from ..dnssec.algorithms import FULL_SUPPORTED, DsDigest
from ..dnssec.validator import ValidatorConfig
from .ede_policy import EdePolicy
from .profiles import CLOUDFLARE, OPENDNS, QUAD9, ResolverProfile

_FULL_DIGESTS = frozenset(
    {int(DsDigest.SHA1), int(DsDigest.SHA256), int(DsDigest.SHA384)}
)


def _silent(name: str, short: str, address: str, validate_fully: bool = True) -> ResolverProfile:
    return ResolverProfile(
        name=name,
        policy=EdePolicy(name=short, reason_codes={}, event_codes={},
                         policy_codes=frozenset()),
        validator=ValidatorConfig(
            supported_algorithms=FULL_SUPPORTED, supported_ds_digests=_FULL_DIGESTS
        ),
        service_address=address,
    )


#: Public services probed in Section 3.2 that had no EDE support in May 2023.
GOOGLE = _silent("Google Public DNS", "google", "8.8.8.8")
LEVEL3 = _silent("Level3/CenturyLink", "level3", "4.2.2.1")
VERISIGN = _silent("Verisign Public DNS", "verisign", "64.6.64.6")
COMODO = _silent("Comodo Secure DNS", "comodo", "8.26.56.26")
CLEANBROWSING = _silent("CleanBrowsing", "cleanbrowsing", "185.228.168.9")
ADGUARD = _silent("AdGuard DNS", "adguard", "94.140.14.14")
NEUSTAR = _silent("Neustar UltraDNS", "neustar", "64.6.65.6")

#: The paper's candidate set: ten popular public resolvers.
TEN_PUBLIC_RESOLVERS: tuple[ResolverProfile, ...] = (
    CLOUDFLARE,
    QUAD9,
    OPENDNS,
    GOOGLE,
    LEVEL3,
    VERISIGN,
    COMODO,
    CLEANBROWSING,
    ADGUARD,
    NEUSTAR,
)


@dataclass
class SupportProbe:
    """Result of probing one public resolver for EDE support."""

    profile: ResolverProfile
    probed_domains: list[str] = field(default_factory=list)
    ede_seen: bool = False
    codes_seen: set[int] = field(default_factory=set)


def probe_ede_support(testbed, profiles=TEN_PUBLIC_RESOLVERS) -> list[SupportProbe]:
    """Reproduce the Section 3.2 selection: query one domain per Table 2
    group through each candidate and keep those that return any EDE."""
    from ..testbed.subdomains import cases_in_group
    from .recursive import RecursiveResolver

    # One representative per group, chosen to trigger errors where possible.
    representatives = []
    for group in range(1, 9):
        cases = cases_in_group(group)
        # prefer a case that is actually misconfigured
        chosen = next(
            (case for case in cases if case.mutation.is_mutated()), cases[0]
        )
        representatives.append(chosen)

    probes = []
    for profile in profiles:
        resolver = RecursiveResolver(
            fabric=testbed.fabric, profile=profile,
            root_hints=testbed.root_hints, trust_anchors=testbed.trust_anchors,
        )
        probe = SupportProbe(profile=profile)
        for case in representatives:
            deployed = testbed.cases[case.label]
            response = resolver.resolve(deployed.query_name, RdataType.A)
            probe.probed_domains.append(case.label)
            if response.ede_codes:
                probe.ede_seen = True
                probe.codes_seen.update(response.ede_codes)
        probes.append(probe)
    return probes


def select_ede_capable(probes: list[SupportProbe]) -> list[ResolverProfile]:
    """The resolvers a measurement study would keep."""
    return [probe.profile for probe in probes if probe.ede_seen]
