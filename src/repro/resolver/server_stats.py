"""Per-server quality memory: SRTT, timeouts, and lameness penalties.

Real resolvers survive flaky authorities because they *remember*: BIND
keeps a smoothed RTT per server address and tries the best one first;
both BIND and Unbound maintain a lame/dead-server cache so a known-bad
address is deprioritized for a while instead of burning a timeout on
every resolution.  :class:`ServerStatsBook` gives the iterative engine
the same memory, driven entirely by the virtual clock so hardened runs
stay deterministic.

Selection is *conservative by default*: servers the book knows nothing
about keep their referral order (stable sort), so with adaptive
selection disabled — or on a fault-free fabric where every server
performs identically on first contact — resolution order is exactly
the seed behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..net.clock import Clock


@dataclass
class ServerSelectionConfig:
    """Knobs for the quality book (defaults follow BIND's adb)."""

    #: EWMA weight of a new RTT sample: srtt = (1-alpha)*srtt + alpha*rtt.
    rtt_alpha: float = 0.3
    #: Optimistic starting SRTT for a never-tried server, seconds.
    initial_srtt: float = 0.05
    #: A timeout multiplies the server's SRTT by this factor…
    timeout_factor: float = 2.0
    #: …capped here, so one bad streak cannot exile a server forever.
    srtt_cap: float = 8.0
    #: How long a lame/dead mark deprioritizes a server, seconds.
    lame_ttl: float = 900.0
    #: Idle SRTT decay: every ``decay_interval`` seconds without an
    #: update, effective SRTT shrinks by ``decay_factor`` so unused
    #: servers are eventually retried (BIND does the same).
    decay_interval: float = 30.0
    decay_factor: float = 0.98


@dataclass
class ServerStat:
    """Everything the book remembers about one server address."""

    srtt: float
    last_update: float
    successes: int = 0
    timeouts: int = 0
    failures: int = 0  # lame marks: bad RCODEs, unreachable
    lame_until: float = 0.0


class ServerStatsBook:
    """SRTT-smoothed, lameness-aware server ranking for one engine.

    An optional ``listener`` (duck-typed: ``on_success(server)`` /
    ``on_failure(server)``) mirrors every observation — this is how the
    resilience layer's circuit breakers ride on the same signal stream
    without the engine calling two books everywhere.
    """

    def __init__(
        self,
        clock: Clock,
        config: ServerSelectionConfig | None = None,
        listener=None,
    ):
        self._clock = clock
        self.config = config or ServerSelectionConfig()
        self.listener = listener
        self._stats: dict[str, ServerStat] = {}

    # -- observations ------------------------------------------------------------

    def _entry(self, server: str) -> ServerStat:
        stat = self._stats.get(server)
        if stat is None:
            stat = ServerStat(
                srtt=self.config.initial_srtt, last_update=self._clock.now()
            )
            self._stats[server] = stat
        return stat

    def note_rtt(self, server: str, rtt: float) -> None:
        stat = self._entry(server)
        alpha = self.config.rtt_alpha
        stat.srtt = (1 - alpha) * stat.srtt + alpha * max(0.0, rtt)
        stat.successes += 1
        stat.last_update = self._clock.now()
        if self.listener is not None:
            self.listener.on_success(server)

    def note_timeout(self, server: str) -> None:
        stat = self._entry(server)
        stat.srtt = min(self.config.srtt_cap, stat.srtt * self.config.timeout_factor)
        stat.timeouts += 1
        stat.last_update = self._clock.now()
        if self.listener is not None:
            self.listener.on_failure(server)

    def note_lame(self, server: str, duration: float | None = None) -> None:
        """Penalty-box a server that answered lame (REFUSED, NOTAUTH,
        SERVFAIL, FORMERR) or proved unreachable."""
        stat = self._entry(server)
        stat.failures += 1
        stat.lame_until = max(
            stat.lame_until,
            self._clock.now() + (self.config.lame_ttl if duration is None else duration),
        )
        stat.last_update = self._clock.now()
        if self.listener is not None:
            self.listener.on_failure(server)

    # -- queries -----------------------------------------------------------------

    def is_lame(self, server: str, now: float | None = None) -> bool:
        stat = self._stats.get(server)
        if stat is None:
            return False
        return stat.lame_until > (self._clock.now() if now is None else now)

    def effective_srtt(self, server: str, now: float | None = None) -> float:
        """SRTT with idle decay applied (never mutates the entry)."""
        stat = self._stats.get(server)
        if stat is None:
            return self.config.initial_srtt
        now = self._clock.now() if now is None else now
        idle = max(0.0, now - stat.last_update)
        intervals = idle / self.config.decay_interval
        if intervals <= 0:
            return stat.srtt
        decayed = stat.srtt * (self.config.decay_factor ** intervals)
        return max(decayed, self.config.initial_srtt * 0.1)

    def order(self, servers: list[str], now: float | None = None) -> list[str]:
        """Best-server-first ordering: non-lame before lame, then by
        effective SRTT.  The sort is stable, so servers with identical
        quality keep their referral order."""
        if len(servers) < 2:
            return list(servers)
        now = self._clock.now() if now is None else now
        return sorted(
            servers,
            key=lambda s: (self.is_lame(s, now), self.effective_srtt(s, now)),
        )

    def snapshot(self) -> dict[str, ServerStat]:
        """A shallow copy for inspection/reporting."""
        return dict(self._stats)

    def __len__(self) -> int:
        return len(self._stats)
