"""Graceful-degradation serving layer: breakers, deadlines, shedding.

The paper's wild scan shows that real public resolvers *degrade* rather
than fail: Cloudflare answers with Stale Answer (3) and Stale NXDOMAIN
Answer (19) while an authoritative is unreachable, instead of burning
every client's patience re-timing-out the same dead servers.  This
module provides the machinery behind that behaviour, all of it driven
by the virtual clock so chaos drills replay exactly:

* :class:`CircuitBreaker` / :class:`BreakerBook` — per-server and
  per-zone breakers layered on the engine's
  :class:`~repro.resolver.server_stats.ServerStatsBook` observations.
  Consecutive timeouts or lame answers open a breaker; while open,
  queries to that target are short-circuited (straight to serve-stale)
  instead of spending the per-resolution query budget; after a
  cooldown a *single* half-open probe decides between re-closing and
  another cooldown.
* :class:`DeadlineBudget` — a client-facing deadline carried through a
  resolution.  Per-upstream timeouts shrink as the budget drains, so
  the resolver always returns its best degraded answer (stale with EDE
  3/19, or SERVFAIL with an accurate EDE) *before* the client would
  have given up.
* :class:`RefreshQueue` — stale-while-revalidate: serving a stale
  entry enqueues a bounded, deduplicated background refresh so
  repeated queries during an outage stay cheap and recovery is
  detected promptly.
* :class:`ResilientFrontend` — overload shedding and response rate
  limiting for the UDP frontend: a per-client token bucket plus a
  global in-flight cap.  Cache hits and stale answers are always
  served; cache-miss work beyond the cap is shed with REFUSED +
  Prohibited (18) or a truncate-to-TCP nudge; malformed datagrams get
  FORMERR instead of an exception.

Everything here is *opt-in*: a resolver constructed without a
:class:`ResilienceConfig` behaves exactly like the seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import TYPE_CHECKING

from ..dns.ede import EdeCode
from ..dns.message import Message
from ..dns.rcode import Rcode
from ..net.clock import Clock

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (hints only)
    from .recursive import RecursiveResolver

#: Every INFO-CODE the resilience layer itself can emit: Stale Answer
#: (3) and Stale NXDOMAIN Answer (19) on degraded answers, Prohibited
#: (18) on shed queries.  ``repro.tools.selfcheck`` cross-checks each
#: against the RFC 8914 registry and the vendor policy tables.
RESILIENCE_EDE_CODES: tuple[int, ...] = (
    int(EdeCode.STALE_ANSWER),
    int(EdeCode.PROHIBITED),
    int(EdeCode.STALE_NXDOMAIN_ANSWER),
)


# ---------------------------------------------------------------------------
# Circuit breakers
# ---------------------------------------------------------------------------


class BreakerState(Enum):
    """The classic three-state circuit-breaker machine."""

    CLOSED = "closed"  # traffic flows; failures are being counted
    OPEN = "open"  # short-circuit everything until the cooldown ends
    HALF_OPEN = "half-open"  # one probe in flight decides the next state


@dataclass
class BreakerConfig:
    """Knobs for one :class:`BreakerBook`."""

    #: Consecutive failures (timeouts, lame answers, unreachables) that
    #: trip a closed breaker open.
    failure_threshold: int = 3
    #: Virtual seconds an open breaker blocks traffic before allowing
    #: the half-open probe.
    cooldown: float = 30.0


@dataclass
class BreakerStats:
    """Counters across every breaker in one book."""

    opened: int = 0
    short_circuits: int = 0
    probes: int = 0
    probe_successes: int = 0
    probe_failures: int = 0


@dataclass
class CircuitBreaker:
    """State for one key (a server address or a ``zone/...`` label)."""

    state: BreakerState = BreakerState.CLOSED
    consecutive_failures: int = 0
    open_until: float = 0.0
    probe_inflight: bool = False
    probe_started: float = 0.0


class BreakerBook:
    """Per-key circuit breakers, fed by ServerStatsBook observations.

    Constructed with ``config=None`` the book is *disabled*: ``allow``
    always answers True and observations are dropped, so the seed
    (non-resilient) paths pay nothing and change nothing.
    """

    def __init__(self, clock: Clock, config: BreakerConfig | None = None, obs=None):
        self._clock = clock
        self.config = config
        self._breakers: dict[str, CircuitBreaker] = {}
        self.stats = BreakerStats()
        from ..obs import NULL_OBS

        self.obs = obs if obs is not None else NULL_OBS
        self._m_transitions = self.obs.counter("repro_breaker_transitions_total")

    @property
    def enabled(self) -> bool:
        return self.config is not None

    def _entry(self, key: str) -> CircuitBreaker:
        breaker = self._breakers.get(key)
        if breaker is None:
            breaker = CircuitBreaker()
            self._breakers[key] = breaker
        return breaker

    def allow(self, key: str) -> bool:
        """May we send traffic to ``key`` right now?

        OPEN breakers deny (and count a short-circuit) until the
        cooldown has elapsed; the first caller after the cooldown gets
        the single half-open probe slot.
        """
        if self.config is None:
            return True
        breaker = self._breakers.get(key)
        if breaker is None or breaker.state is BreakerState.CLOSED:
            return True
        now = self._clock.now()
        if breaker.state is BreakerState.OPEN:
            if now < breaker.open_until:
                self.stats.short_circuits += 1
                return False
            breaker.state = BreakerState.HALF_OPEN
            breaker.probe_inflight = False
            self._m_transitions.labels(transition="half_open").inc()
        # HALF_OPEN: exactly one probe at a time.  A probe that never
        # reported back (its query path died without an observation)
        # expires after one cooldown so the breaker cannot wedge shut.
        if breaker.probe_inflight and (
            now - breaker.probe_started < self.config.cooldown
        ):
            self.stats.short_circuits += 1
            return False
        breaker.probe_inflight = True
        breaker.probe_started = now
        self.stats.probes += 1
        self._m_transitions.labels(transition="probe").inc()
        return True

    # -- ServerStatsBook listener protocol ---------------------------------

    def on_success(self, key: str) -> None:
        if self.config is None:
            return
        breaker = self._breakers.get(key)
        if breaker is None:
            return
        if breaker.state is BreakerState.HALF_OPEN:
            self.stats.probe_successes += 1
        if breaker.state is not BreakerState.CLOSED:
            self._m_transitions.labels(transition="close").inc()
        breaker.state = BreakerState.CLOSED
        breaker.consecutive_failures = 0
        breaker.probe_inflight = False

    def on_failure(self, key: str) -> None:
        if self.config is None:
            return
        breaker = self._entry(key)
        breaker.consecutive_failures += 1
        if breaker.state is BreakerState.HALF_OPEN:
            self.stats.probe_failures += 1
            self._open(breaker)
        elif (
            breaker.state is BreakerState.CLOSED
            and breaker.consecutive_failures >= self.config.failure_threshold
        ):
            self._open(breaker)

    def _open(self, breaker: CircuitBreaker) -> None:
        breaker.state = BreakerState.OPEN
        breaker.open_until = self._clock.now() + self.config.cooldown
        breaker.probe_inflight = False
        self.stats.opened += 1
        self._m_transitions.labels(transition="open").inc()

    # -- inspection ---------------------------------------------------------

    def state_of(self, key: str) -> BreakerState:
        breaker = self._breakers.get(key)
        return breaker.state if breaker is not None else BreakerState.CLOSED

    def snapshot(self) -> dict[str, CircuitBreaker]:
        return dict(self._breakers)

    def open_keys(self) -> list[str]:
        return sorted(
            key
            for key, breaker in self._breakers.items()
            if breaker.state is not BreakerState.CLOSED
        )

    def __len__(self) -> int:
        return len(self._breakers)


# ---------------------------------------------------------------------------
# Deadline budgets
# ---------------------------------------------------------------------------


class DeadlineBudget:
    """A client-facing deadline propagated through a resolution.

    The engine clamps each upstream timeout to what is left of the
    budget, and aborts (cheaply, without sending) once it is spent —
    guaranteeing the degraded answer reaches the client *before* the
    client's own timer would have fired.
    """

    __slots__ = ("_clock", "deadline", "reported")

    #: Never hand the fabric a zero/negative timeout: the last sliver of
    #: budget still buys one very impatient query.
    MIN_TIMEOUT = 0.05

    def __init__(self, clock: Clock, deadline: float):
        self._clock = clock
        self.deadline = deadline
        #: The DEADLINE_EXHAUSTED event is recorded once per resolution.
        self.reported = False

    @classmethod
    def after(cls, clock: Clock, seconds: float) -> "DeadlineBudget":
        return cls(clock, clock.now() + seconds)

    def remaining(self) -> float:
        return max(0.0, self.deadline - self._clock.now())

    @property
    def expired(self) -> bool:
        return self._clock.now() >= self.deadline

    def clamp(self, timeout: float) -> float:
        """Shrink ``timeout`` to the remaining budget (with a floor)."""
        return max(self.MIN_TIMEOUT, min(timeout, self.remaining()))


# ---------------------------------------------------------------------------
# Stale-while-revalidate
# ---------------------------------------------------------------------------


@dataclass
class RefreshStats:
    enqueued: int = 0
    deduplicated: int = 0
    shed_full: int = 0
    refreshed: int = 0
    retried: int = 0


class RefreshQueue:
    """Bounded, deduplicated queue of (qname, rdtype) refresh work.

    Serving a stale answer enqueues its key here; the resolver drains a
    few entries per client query.  A key already queued is a no-op (the
    dedup mirrors the single-flight machinery the refresh itself rides
    through), and a full queue sheds new work instead of growing —
    during a mass outage the queue holds at most ``capacity`` names,
    not one per client query.
    """

    def __init__(
        self,
        clock: Clock,
        capacity: int = 256,
        retry_interval: float = 30.0,
    ):
        self._clock = clock
        self.capacity = capacity
        self.retry_interval = retry_interval
        #: key -> virtual time before which the refresh must not run.
        self._pending: dict[tuple, float] = {}
        self.stats = RefreshStats()

    def enqueue(self, key: tuple) -> bool:
        if key in self._pending:
            self.stats.deduplicated += 1
            return False
        if len(self._pending) >= self.capacity:
            self.stats.shed_full += 1
            return False
        self._pending[key] = self._clock.now()
        self.stats.enqueued += 1
        return True

    def due(self, limit: int) -> list[tuple]:
        """Up to ``limit`` keys whose not-before time has passed."""
        if limit <= 0 or not self._pending:
            return []
        now = self._clock.now()
        return [key for key, at in self._pending.items() if at <= now][:limit]

    def reschedule(self, key: tuple) -> None:
        """The refresh failed (still stale): try again later."""
        if key in self._pending:
            self._pending[key] = self._clock.now() + self.retry_interval
            self.stats.retried += 1

    def done(self, key: tuple) -> None:
        if self._pending.pop(key, None) is not None:
            self.stats.refreshed += 1

    def __len__(self) -> int:
        return len(self._pending)


# ---------------------------------------------------------------------------
# Resolver-side configuration bundle
# ---------------------------------------------------------------------------


@dataclass
class ResilienceConfig:
    """Everything a :class:`RecursiveResolver` needs to degrade gracefully."""

    breaker: BreakerConfig = field(default_factory=BreakerConfig)
    #: Client-facing deadline per query, virtual seconds; 0 disables the
    #: budget (breakers and revalidation still apply).
    client_deadline: float = 5.0
    #: Bounded revalidation queue size.
    refresh_capacity: int = 256
    #: Background refreshes attempted after each client query.
    refresh_per_query: int = 1
    #: Back-off before re-trying a refresh that still came back stale.
    refresh_retry_interval: float = 30.0


# ---------------------------------------------------------------------------
# UDP frontend: token buckets, in-flight caps, shed responses
# ---------------------------------------------------------------------------


class TokenBucket:
    """A virtual-time token bucket (the classic RRL building block).

    Refill is hardened against irregular clock observations: a shared
    bucket read from concurrent lanes can see time *backwards* (lane B
    is virtually earlier than the lane A that last touched it), and
    phase transitions in the load scenarios leap the clock minutes at a
    time.  Negative elapsed time must not drain tokens or rewind
    ``last`` (which would later double-refill), and a huge jump must
    saturate at ``burst``, never overshoot.  Invariant, checked by a
    hypothesis property test: ``0 <= tokens <= max(burst, n_initial)``
    across arbitrary jump sequences.
    """

    __slots__ = ("_clock", "rate", "burst", "tokens", "last")

    def __init__(self, clock: Clock, rate: float, burst: float):
        self._clock = clock
        self.rate = rate
        self.burst = burst
        self.tokens = burst
        self.last = clock.now()

    def take(self, n: float = 1.0) -> bool:
        now = self._clock.now()
        elapsed = now - self.last
        if elapsed > 0.0:
            self.tokens = min(self.burst, self.tokens + elapsed * self.rate)
            self.last = now
        if self.tokens >= n:
            self.tokens -= n
            return True
        return False


@dataclass
class FrontendConfig:
    """Shed policy for one :class:`ResilientFrontend`."""

    #: Per-client refill rate (queries per virtual second) and burst.
    client_rate: float = 20.0
    client_burst: float = 40.0
    #: Global cap on concurrent cache-miss resolutions.
    max_inflight: int = 64
    #: Every Nth shed answer is TC=1 (truncate-to-TCP retry nudge, the
    #: RRL "slip" mechanic) instead of REFUSED; 0 means always REFUSED.
    truncate_every: int = 0
    #: Bound on the per-client bucket table (oldest evicted beyond it).
    max_clients: int = 4096
    #: Drain a few background refreshes after each answered datagram.
    #: Hosts that account for background work separately (the load
    #: engine) turn this off and call ``resolver.run_refreshes()``
    #: themselves.
    inline_refreshes: bool = True
    #: Virtual-seconds ceiling on one full-resolution serve; answers
    #: slower than this count as deadline breaches in
    #: :class:`FrontendStats` (and feed shard health when the frontend
    #: sits behind a :class:`~repro.cluster.cluster.ResolverCluster`).
    #: ``None`` — the default — disables breach accounting, so a
    #: legitimately slow resolution can never perturb routing.
    service_deadline: float | None = None
    #: Serve repeat wire queries from the resolver's rendered-response
    #: cache (requires a resolver built with ``render_cache=True``).  A
    #: render hit is answered *before* shed policy runs — it still
    #: charges the client's token bucket, but cannot be refused; the
    #: flag is off by default so the seed shed behaviour is untouched.
    render_cache: bool = False


#: The closed vocabulary of shed reasons, as exposed on the
#: ``repro_frontend_shed_total`` metric's ``reason`` label and in
#: :meth:`FrontendStats.snapshot`: per-client token-bucket response rate
#: limiting, the global in-flight cap, and unparseable datagrams.
SHED_REASONS: tuple[str, ...] = ("rrl", "inflight-cap", "garbage")


@dataclass
class FrontendStats:
    datagrams: int = 0
    answered: int = 0
    formerr: int = 0
    served_cached: int = 0  # always-served path: fresh/negative/stale hits
    shed_refused: int = 0
    shed_truncated: int = 0
    bucket_sheds: int = 0
    inflight_sheds: int = 0
    handler_errors: int = 0
    inflight_peak: int = 0
    #: Answered serves slower than ``FrontendConfig.service_deadline``.
    deadline_breaches: int = 0
    #: Datagrams answered straight from the rendered-wire cache (these
    #: are also counted in ``answered``).
    render_hits: int = 0
    #: reason -> count, same closed vocabulary as the metric label.
    shed_by_reason: dict = field(default_factory=dict)

    def shed(self, reason: str) -> None:
        if reason not in SHED_REASONS:
            raise ValueError(f"undocumented shed reason {reason!r}")
        self.shed_by_reason[reason] = self.shed_by_reason.get(reason, 0) + 1

    def snapshot(self) -> dict:
        """JSON-ready labeled view; every reason present, zeros included."""
        return {
            "datagrams": self.datagrams,
            "answered": self.answered,
            "served_cached": self.served_cached,
            "shed_refused": self.shed_refused,
            "shed_truncated": self.shed_truncated,
            "handler_errors": self.handler_errors,
            "inflight_peak": self.inflight_peak,
            "deadline_breaches": self.deadline_breaches,
            "render_hits": self.render_hits,
            "shed_by_reason": {
                reason: self.shed_by_reason.get(reason, 0)
                for reason in SHED_REASONS
            },
        }


def synthesize_header_response(wire: bytes, rcode: int) -> bytes:
    """An rcode-only response echoing the query header, no parsing.

    Mirrors :func:`repro.net.chaos.synthesize_refused`: flip QR, set
    RCODE, let the question ride along — the client can correlate the
    answer by message ID even when we could not parse the payload.  For
    datagrams shorter than a DNS header an empty FORMERR is returned.
    """
    if len(wire) < 12:
        return Message(rcode=Rcode.FORMERR, qr=True).to_wire()
    mutated = bytearray(wire)
    mutated[2] |= 0x80  # QR
    mutated[3] = (mutated[3] & 0xF0) | (rcode & 0x0F)
    return bytes(mutated)


class ResilientFrontend:
    """Overload-shedding wrapper around a resolver's datagram endpoint.

    Speaks the same ``handle_datagram(wire, source) -> wire | None``
    protocol as every other endpoint, so it can be registered on the
    simulated fabric or bound to a real UDP socket interchangeably.
    ``handle_datagram`` never raises: malformed input gets FORMERR, an
    exploding handler gets SERVFAIL.
    """

    def __init__(
        self,
        resolver: "RecursiveResolver",
        config: FrontendConfig | None = None,
        clock: Clock | None = None,
    ):
        self.resolver = resolver
        self.config = config or FrontendConfig()
        self._clock = clock or resolver.clock
        self._buckets: dict[str, TokenBucket] = {}
        self._inflight = 0
        self._shed_count = 0
        self.stats = FrontendStats()
        # Fake resolvers in tests may not carry an obs handle; degrade
        # to the null observability rather than demanding one.
        from ..obs import NULL_OBS

        self.obs = getattr(resolver, "obs", NULL_OBS)
        self._m_datagrams = self.obs.counter("repro_frontend_datagrams_total")
        self._m_shed = self.obs.counter("repro_frontend_shed_total")
        self._m_responses = self.obs.counter("repro_frontend_responses_total")
        self._m_served_cached = self.obs.counter(
            "repro_frontend_served_cached_total"
        )
        self._m_inflight = self.obs.gauge("repro_frontend_inflight")

    # -- shed policy ---------------------------------------------------------

    def _bucket(self, source: str) -> TokenBucket:
        bucket = self._buckets.get(source)
        if bucket is None:
            if len(self._buckets) >= self.config.max_clients:
                # Drop the oldest-inserted client to stay bounded.
                self._buckets.pop(next(iter(self._buckets)))
            bucket = TokenBucket(
                self._clock, self.config.client_rate, self.config.client_burst
            )
            self._buckets[source] = bucket
        return bucket

    def _shed_response(self, query: Message) -> Message:
        """REFUSED + Prohibited (18), or every Nth time a TC=1 nudge."""
        self._shed_count += 1
        response = query.make_response()
        if (
            self.config.truncate_every > 0
            and self._shed_count % self.config.truncate_every == 0
        ):
            response.tc = True
            self.stats.shed_truncated += 1
            self._m_responses.labels(outcome="truncated").inc()
            return response
        response.rcode = Rcode.REFUSED
        if query.edns is not None:
            response.add_ede(int(EdeCode.PROHIBITED), "client rate limited")
        self.stats.shed_refused += 1
        self._m_responses.labels(outcome="refused").inc()
        return response

    # -- endpoint protocol ---------------------------------------------------

    def handle_datagram(self, wire: bytes, source: str) -> bytes | None:
        self.stats.datagrams += 1
        self._m_datagrams.inc()
        key = self.resolver.render_serve_key(wire) if self.config.render_cache else None
        if key is not None:
            served = self.resolver.render_serve(key, wire)
            if served is not None:
                # Mirror the always-served cache-hit semantics: the
                # client's bucket is charged (a hit is still a served
                # answer) but the outcome cannot be a shed, and the
                # post-answer refresh drain still runs below.
                self._bucket(source).take()
                self.stats.answered += 1
                self.stats.render_hits += 1
                self._m_responses.labels(outcome="answered").inc()
                if self.config.inline_refreshes:
                    try:
                        self.resolver.run_refreshes()
                    except Exception:
                        self.stats.handler_errors += 1
                return served
        try:
            query = Message.from_wire(wire)
        except Exception:
            self.stats.formerr += 1
            self.stats.shed(reason="garbage")
            self._m_shed.labels(reason="garbage").inc()
            self._m_responses.labels(outcome="formerr").inc()
            return synthesize_header_response(wire, Rcode.FORMERR)
        if key is not None:
            self.resolver.render_reset()
        try:
            response = self._serve(query, source).to_wire()
        except Exception:
            self.stats.handler_errors += 1
            self._m_responses.labels(outcome="servfail").inc()
            return synthesize_header_response(wire, Rcode.SERVFAIL)
        if key is not None:
            self.resolver.render_store(key, response)
        # Stale-while-revalidate: the frontend spends a little post-answer
        # effort refreshing entries whose staleness was just papered over.
        # Isolated from the answer path — a refresh blow-up must never
        # turn an already-built response into a SERVFAIL.  Hosts that
        # want to schedule (and account for) that background work
        # themselves — the load engine separates it from client-visible
        # service time — turn ``inline_refreshes`` off and drive
        # ``resolver.run_refreshes()`` at their own cadence.
        if self.config.inline_refreshes:
            try:
                self.resolver.run_refreshes()
            except Exception:
                self.stats.handler_errors += 1
        return response

    def _serve(self, query: Message, source: str) -> Message:
        shedding = False
        if self._inflight >= self.config.max_inflight:
            self.stats.inflight_sheds += 1
            self.stats.shed(reason="inflight-cap")
            self._m_shed.labels(reason="inflight-cap").inc()
            shedding = True
        elif not self._bucket(source).take():
            self.stats.bucket_sheds += 1
            self.stats.shed(reason="rrl")
            self._m_shed.labels(reason="rrl").inc()
            shedding = True
        if shedding:
            # Cache hits and stale answers are always served — shedding
            # only protects the expensive cache-miss resolution path.
            cached = self.resolver.answer_from_cache(query)
            if cached is not None:
                self.stats.served_cached += 1
                self._m_served_cached.inc()
                self._m_responses.labels(outcome="cached").inc()
                return cached
            return self._shed_response(query)
        self._inflight += 1
        self.stats.inflight_peak = max(self.stats.inflight_peak, self._inflight)
        self._m_inflight.set(self._inflight)
        started = self._clock.now()
        try:
            response = self.resolver.handle_query(query, source)
        finally:
            self._inflight -= 1
            self._m_inflight.set(self._inflight)
        deadline = self.config.service_deadline
        if deadline is not None and self._clock.now() - started > deadline:
            self.stats.deadline_breaches += 1
        self.stats.answered += 1
        self._m_responses.labels(outcome="answered").inc()
        return response
