"""DNS messages: header, question, and the three record sections.

Encoding groups records into RRsets on parse and flattens them on write;
the OPT pseudo-record is lifted out of the additional section into a
:class:`repro.dns.edns.Edns` object (and re-synthesized on encode), so
EDE options are always reached via ``message.edns``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from . import rcode as rcode_mod
from .edns import Edns
from .ede import ExtendedError, OptionCode
from .exceptions import FormError
from .name import Name
from .rdata import Rdata
from .rrset import RRset
from .types import Opcode, RdataClass, RdataType
from .wire import WireReader, WireWriter

HEADER_LENGTH = 12

#: Fallback message-ID generator for callers that inject neither an
#: explicit ``msg_id`` nor their own ``rng``.  Seeded so that runs are
#: reproducible end-to-end; components owning a seeded Random (the
#: iterative resolver, the scanners) pass theirs instead.
_ID_RNG = random.Random(0x8914)

# header flag bit masks (within the 16-bit flags word)
FLAG_QR = 0x8000
FLAG_AA = 0x0400
FLAG_TC = 0x0200
FLAG_RD = 0x0100
FLAG_RA = 0x0080
FLAG_AD = 0x0020
FLAG_CD = 0x0010


@dataclass(frozen=True)
class Question:
    name: Name
    rdtype: RdataType
    rdclass: RdataClass = RdataClass.IN

    def __str__(self) -> str:
        return f"{self.name} {self.rdclass} {self.rdtype}"


@dataclass
class Message:
    """A DNS message in decoded form."""

    id: int = 0
    qr: bool = False
    opcode: Opcode = Opcode.QUERY
    aa: bool = False
    tc: bool = False
    rd: bool = True
    ra: bool = False
    ad: bool = False
    cd: bool = False
    rcode: int = rcode_mod.Rcode.NOERROR
    question: list[Question] = field(default_factory=list)
    answer: list[RRset] = field(default_factory=list)
    authority: list[RRset] = field(default_factory=list)
    additional: list[RRset] = field(default_factory=list)
    edns: Edns | None = None

    # -- constructors --------------------------------------------------------

    @classmethod
    def make_query(
        cls,
        qname: Name | str,
        rdtype: RdataType | str = RdataType.A,
        rdclass: RdataClass = RdataClass.IN,
        *,
        want_dnssec: bool = False,
        use_edns: bool = True,
        recursion_desired: bool = True,
        payload: int = 1232,
        msg_id: int | None = None,
        rng: random.Random | None = None,
    ) -> "Message":
        if isinstance(qname, str):
            qname = Name.from_text(qname)
        if not qname.is_absolute():
            # Queries are always for absolute names; be dig-like about it.
            qname = Name(qname.labels + (b"",))
        rdtype = RdataType.make(rdtype)
        if msg_id is None:
            msg_id = (rng if rng is not None else _ID_RNG).randrange(0x10000)
        message = cls(
            id=msg_id,
            rd=recursion_desired,
        )
        message.question.append(Question(qname, rdtype, rdclass))
        if use_edns or want_dnssec:
            message.edns = Edns(payload=payload, dnssec_ok=want_dnssec)
        return message

    def make_response(self, recursion_available: bool = True) -> "Message":
        """Skeleton response to this query, echoing id/question/EDNS."""
        response = Message(
            id=self.id,
            qr=True,
            opcode=self.opcode,
            rd=self.rd,
            ra=recursion_available,
            cd=self.cd,
        )
        response.question = list(self.question)
        if self.edns is not None:
            response.edns = Edns(dnssec_ok=self.edns.dnssec_ok)
        return response

    # -- EDE helpers -----------------------------------------------------------

    @property
    def extended_errors(self) -> list[ExtendedError]:
        """All EDE options present on this message (possibly empty)."""
        if self.edns is None:
            return []
        return [
            opt
            for opt in self.edns.options
            if isinstance(opt, ExtendedError) and opt.code == OptionCode.EDE
        ]

    @property
    def ede_codes(self) -> tuple[int, ...]:
        """Sorted, de-duplicated INFO-CODEs on this message."""
        return tuple(sorted({e.info_code for e in self.extended_errors}))

    def add_ede(self, info_code: int, extra_text: str = "") -> None:
        """Attach an EDE option, creating the OPT record if needed."""
        if self.edns is None:
            self.edns = Edns()
        existing = {(e.info_code, e.extra_text) for e in self.extended_errors}
        if (int(info_code), extra_text) not in existing:
            self.edns.options.append(ExtendedError.make(info_code, extra_text))

    # -- section helpers -----------------------------------------------------

    def find_answer(self, name: Name, rdtype: RdataType) -> RRset | None:
        for rrset in self.answer:
            if rrset.match(name, rdtype):
                return rrset
        return None

    def section_rrsets(self) -> list[RRset]:
        return [*self.answer, *self.authority, *self.additional]

    # -- wire ---------------------------------------------------------------------

    def to_wire(self, max_size: int = 0) -> bytes:
        """Encode; if ``max_size`` > 0 and exceeded, truncate and set TC."""
        writer = WireWriter()
        flags = 0
        if self.qr:
            flags |= FLAG_QR
        flags |= (int(self.opcode) & 0xF) << 11
        if self.aa:
            flags |= FLAG_AA
        if self.tc:
            flags |= FLAG_TC
        if self.rd:
            flags |= FLAG_RD
        if self.ra:
            flags |= FLAG_RA
        if self.ad:
            flags |= FLAG_AD
        if self.cd:
            flags |= FLAG_CD
        flags |= rcode_mod.header_bits(self.rcode)

        writer.write_u16(self.id)
        writer.write_u16(flags)
        writer.write_u16(len(self.question))
        ancount_at = writer.offset
        writer.write_u16(0)
        nscount_at = writer.offset
        writer.write_u16(0)
        arcount_at = writer.offset
        writer.write_u16(0)

        for question in self.question:
            writer.write_name(question.name)
            writer.write_u16(int(question.rdtype))
            writer.write_u16(int(question.rdclass))

        ancount = sum(rrset.write(writer) for rrset in self.answer)
        writer.patch_u16(ancount_at, ancount)
        nscount = sum(rrset.write(writer) for rrset in self.authority)
        writer.patch_u16(nscount_at, nscount)
        arcount = sum(rrset.write(writer) for rrset in self.additional)

        if self.edns is not None:
            edns = self.edns
            edns.extended_rcode_bits = rcode_mod.extended_bits(self.rcode)
            edns.write(writer)
            arcount += 1
        writer.patch_u16(arcount_at, arcount)

        wire = writer.getvalue()
        if max_size and len(wire) > max_size:
            truncated = Message(
                id=self.id,
                qr=self.qr,
                opcode=self.opcode,
                aa=self.aa,
                tc=True,
                rd=self.rd,
                ra=self.ra,
                rcode=self.rcode,
                question=list(self.question),
                edns=self.edns,
            )
            return truncated.to_wire()
        return wire

    @classmethod
    def from_wire(cls, wire: bytes | bytearray | memoryview) -> "Message":
        """Parse a message from any bytes-like buffer.

        ``memoryview`` input parses without copying the buffer up front —
        useful when the message sits inside a larger receive buffer
        (TCP streams, zone transfers).
        """
        reader = WireReader(wire)
        if len(wire) < HEADER_LENGTH:
            raise FormError("message shorter than header")
        msg_id = reader.read_u16()
        flags = reader.read_u16()
        qdcount = reader.read_u16()
        ancount = reader.read_u16()
        nscount = reader.read_u16()
        arcount = reader.read_u16()

        opcode_value = (flags >> 11) & 0xF
        try:
            opcode = Opcode(opcode_value)
        except ValueError as exc:
            raise FormError(f"unknown opcode {opcode_value}") from exc
        message = cls(
            id=msg_id,
            qr=bool(flags & FLAG_QR),
            opcode=opcode,
            aa=bool(flags & FLAG_AA),
            tc=bool(flags & FLAG_TC),
            rd=bool(flags & FLAG_RD),
            ra=bool(flags & FLAG_RA),
            ad=bool(flags & FLAG_AD),
            cd=bool(flags & FLAG_CD),
            rcode=flags & 0xF,
        )

        for _ in range(qdcount):
            qname = reader.read_name()
            qtype = reader.read_u16()
            qclass = reader.read_u16()
            try:
                rdtype = RdataType(qtype)
                rdclass = RdataClass(qclass)
            except ValueError as exc:
                raise FormError(f"unknown question type/class {qtype}/{qclass}") from exc
            message.question.append(Question(qname, rdtype, rdclass))

        message.answer = _read_section(reader, ancount, message, is_additional=False)
        message.authority = _read_section(reader, nscount, message, is_additional=False)
        message.additional = _read_section(reader, arcount, message, is_additional=True)

        if message.edns is not None:
            message.rcode = rcode_mod.join(
                message.rcode, message.edns.extended_rcode_bits
            )
        return message

    def __str__(self) -> str:
        lines = [
            f";; id {self.id} opcode {self.opcode.name}"
            f" rcode {rcode_mod.Rcode(self.rcode).name if self.rcode in rcode_mod.Rcode._value2member_map_ else self.rcode}"
            f" flags {'qr ' if self.qr else ''}{'aa ' if self.aa else ''}"
            f"{'rd ' if self.rd else ''}{'ra ' if self.ra else ''}"
            f"{'ad ' if self.ad else ''}{'cd' if self.cd else ''}".rstrip()
        ]
        for question in self.question:
            lines.append(f";; QUESTION\n{question}")
        for title, section in (
            ("ANSWER", self.answer),
            ("AUTHORITY", self.authority),
            ("ADDITIONAL", self.additional),
        ):
            if section:
                lines.append(f";; {title}")
                lines.extend(str(rrset) for rrset in section)
        for ede in self.extended_errors:
            lines.append(f";; {ede}")
        return "\n".join(lines)


def _read_section(
    reader: WireReader, count: int, message: Message, is_additional: bool
) -> list[RRset]:
    rrsets: list[RRset] = []
    for _ in range(count):
        name = reader.read_name()
        rdtype_value = reader.read_u16()
        rdclass_value = reader.read_u16()
        ttl = reader.read_u32()
        rdlength = reader.read_u16()
        if is_additional and rdtype_value == int(RdataType.OPT):
            if message.edns is not None:
                raise FormError("more than one OPT record")
            rdata = reader.read_bytes(rdlength)
            message.edns = Edns.from_opt_fields(rdclass_value, ttl, rdata)
            continue
        try:
            rdtype = RdataType(rdtype_value)
        except ValueError:
            rdtype = rdtype_value  # type: ignore[assignment]
        rdata = Rdata.parse(rdtype, reader, rdlength)
        for rrset in rrsets:
            if (
                rrset.name == name
                and int(rrset.rdtype) == int(rdtype)
                and int(rrset.rdclass) == rdclass_value
            ):
                rrset.add(rdata)
                rrset.ttl = min(rrset.ttl, ttl)
                break
        else:
            try:
                rdclass = RdataClass(rdclass_value)
            except ValueError as exc:
                raise FormError(f"unknown RR class {rdclass_value}") from exc
            rrsets.append(
                RRset(
                    name=name,
                    rdtype=rdtype if isinstance(rdtype, RdataType) else RdataType.NONE,
                    ttl=ttl,
                    rdclass=rdclass,
                    rdatas=[rdata],
                )
            )
    return rrsets
