"""Wire-format buffer primitives.

:class:`WireWriter` builds a DNS message with RFC 1035 name compression;
:class:`WireReader` parses one, following (and validating) compression
pointers.  The reader accepts any bytes-like buffer — ``bytes``,
``bytearray`` or ``memoryview`` — so callers can parse out of a larger
receive buffer (TCP streams, AXFR) without copying the message first.

Every simulated packet traverses this codec twice (once written, once
parsed), so the reader keeps a per-message *name cache*: the first time
a name is decoded, every label-start offset is remembered with its
decoded suffix, and later compression pointers into those offsets skip
the label walk entirely.  The cache changes no observable behaviour —
a pointer target is only cached after the slow walk validated it — and
can be disabled (``name_cache=False``) for differential testing against
the plain walk.
"""

from __future__ import annotations

import struct

from .exceptions import BadLabelType, BadPointer, TruncatedMessage
from .name import MAX_NAME_LENGTH, Name

_POINTER_FLAG = 0xC0
_MAX_POINTER_TARGET = 0x3FFF


class WireWriter:
    """Accumulates wire data and compresses domain names.

    Compression targets are remembered per *folded* (lowercase) suffix so
    equal names differing only in case share pointers, as real servers do.
    """

    def __init__(self, enable_compression: bool = True):
        self._buf = bytearray()
        self._offsets: dict[tuple[bytes, ...], int] = {}
        self._compress = enable_compression

    def __len__(self) -> int:
        return len(self._buf)

    @property
    def offset(self) -> int:
        return len(self._buf)

    def getvalue(self) -> bytes:
        return bytes(self._buf)

    # -- scalars -------------------------------------------------------------

    def write_u8(self, value: int) -> None:
        self._buf.append(value & 0xFF)

    def write_u16(self, value: int) -> None:
        self._buf += struct.pack("!H", value & 0xFFFF)

    def write_u32(self, value: int) -> None:
        self._buf += struct.pack("!I", value & 0xFFFFFFFF)

    def write_bytes(self, data: bytes) -> None:
        self._buf += data

    def patch_u16(self, offset: int, value: int) -> None:
        """Overwrite a previously written 16-bit field (e.g. RDLENGTH)."""
        struct.pack_into("!H", self._buf, offset, value & 0xFFFF)

    # -- names ----------------------------------------------------------------

    def write_name(self, name: Name, compress: bool | None = None) -> None:
        """Write ``name``, emitting a compression pointer when possible.

        DNSSEC rdata names must not be compressed (RFC 3597 / 4034); pass
        ``compress=False`` for those.
        """
        if not name.is_absolute():
            raise ValueError("can only encode absolute names")
        do_compress = self._compress if compress is None else compress
        labels = name.labels
        folded = name.folded_labels  # precomputed at Name construction
        for index in range(len(labels)):
            suffix = folded[index:]
            if suffix == (b"",):
                break
            if do_compress and suffix in self._offsets:
                pointer = self._offsets[suffix]
                self.write_u16(0xC000 | pointer)
                return
            if self.offset <= _MAX_POINTER_TARGET:
                self._offsets.setdefault(suffix, self.offset)
            label = labels[index]
            self.write_u8(len(label))
            self.write_bytes(label)
        self.write_u8(0)


class WireReader:
    """Sequential reader over a DNS wire buffer with pointer chasing."""

    def __init__(self, data: bytes | bytearray | memoryview, offset: int = 0,
                 name_cache: bool = True):
        self._data = data
        self._pos = offset
        #: label-start offset -> decoded (original-case) label suffix,
        #: including the root label; populated as names are read.
        self._names: dict[int, tuple[bytes, ...]] | None = (
            {} if name_cache else None
        )

    @property
    def pos(self) -> int:
        return self._pos

    def seek(self, offset: int) -> None:
        self._pos = offset

    def remaining(self) -> int:
        return len(self._data) - self._pos

    def at_end(self) -> bool:
        return self._pos >= len(self._data)

    # -- scalars ---------------------------------------------------------------

    def read_u8(self) -> int:
        if self._pos + 1 > len(self._data):
            raise TruncatedMessage("u8 past end of buffer")
        value = self._data[self._pos]
        self._pos += 1
        return value

    def read_u16(self) -> int:
        if self._pos + 2 > len(self._data):
            raise TruncatedMessage("u16 past end of buffer")
        (value,) = struct.unpack_from("!H", self._data, self._pos)
        self._pos += 2
        return value

    def read_u32(self) -> int:
        if self._pos + 4 > len(self._data):
            raise TruncatedMessage("u32 past end of buffer")
        (value,) = struct.unpack_from("!I", self._data, self._pos)
        self._pos += 4
        return value

    def read_bytes(self, count: int) -> bytes:
        if count < 0 or self._pos + count > len(self._data):
            raise TruncatedMessage(f"{count} bytes past end of buffer")
        # bytes() normalizes memoryview slices; on a bytes buffer the
        # slice is already a fresh bytes object and this is free.
        data = bytes(self._data[self._pos : self._pos + count])
        self._pos += count
        return data

    # -- names ------------------------------------------------------------------

    def read_name(self) -> Name:
        """Read a possibly compressed name starting at the current position.

        Pointers must point strictly backwards; cycles and forward pointers
        raise :class:`BadPointer`.

        A pointer whose target offset was already decoded by an earlier
        name in this message resolves from the name cache instead of
        re-walking the labels; validation (backwards-only, cycle set,
        255-octet bound) is identical either way, so the fast and slow
        paths accept and reject exactly the same inputs.
        """
        data = self._data
        size = len(data)
        cache = self._names
        labels: list[bytes] = []
        starts: list[int] = []  # buffer offset of each collected label
        total = 0
        pos = self._pos
        jumped = False
        seen: set[int] = set()
        while True:
            if pos >= size:
                raise TruncatedMessage("name runs past end of buffer")
            length = data[pos]
            kind = length & _POINTER_FLAG
            if kind == _POINTER_FLAG:
                if pos + 2 > size:
                    raise TruncatedMessage("pointer past end of buffer")
                target = ((length & 0x3F) << 8) | data[pos + 1]
                if not jumped:
                    self._pos = pos + 2
                    jumped = True
                if target >= pos or target in seen:
                    raise BadPointer(f"bad compression pointer to {target}")
                seen.add(target)
                if cache is not None:
                    suffix = cache.get(target)
                    if suffix is not None:
                        # Same length accounting as the walk below; the
                        # root label never contributes to `total`.
                        for label in suffix:
                            if label:
                                total += len(label) + 1
                                if total > MAX_NAME_LENGTH:
                                    raise BadPointer(
                                        "name exceeds 255 octets while decompressing"
                                    )
                        labels.extend(suffix)
                        return self._finish_name(labels, starts)
                pos = target
                continue
            if kind != 0:
                raise BadLabelType(f"unsupported label type {kind >> 6:#04b}")
            if length == 0:
                labels.append(b"")
                if not jumped:
                    self._pos = pos + 1
                return self._finish_name(labels, starts)
            if pos + 1 + length > size:
                raise TruncatedMessage("label runs past end of buffer")
            starts.append(pos)
            labels.append(bytes(data[pos + 1 : pos + 1 + length]))
            total += length + 1
            if total > MAX_NAME_LENGTH:
                raise BadPointer("name exceeds 255 octets while decompressing")
            pos += 1 + length

    def _finish_name(self, labels: list[bytes], starts: list[int]) -> Name:
        """Build the Name and remember every label-start suffix."""
        name = Name.from_wire_labels(labels)
        cache = self._names
        if cache is not None and starts:
            wire_labels = name.labels
            for index, start in enumerate(starts):
                if start <= _MAX_POINTER_TARGET and start not in cache:
                    cache[start] = wire_labels[index:]
        return name
