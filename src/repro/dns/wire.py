"""Wire-format buffer primitives.

:class:`WireWriter` builds a DNS message with RFC 1035 name compression;
:class:`WireReader` parses one, following (and validating) compression
pointers.  Both operate on plain ``bytes`` so they are reusable for rdata
encoding as well as whole messages.
"""

from __future__ import annotations

import struct

from .exceptions import BadLabelType, BadPointer, TruncatedMessage
from .name import MAX_NAME_LENGTH, Name

_POINTER_FLAG = 0xC0
_MAX_POINTER_TARGET = 0x3FFF


class WireWriter:
    """Accumulates wire data and compresses domain names.

    Compression targets are remembered per *folded* (lowercase) suffix so
    equal names differing only in case share pointers, as real servers do.
    """

    def __init__(self, enable_compression: bool = True):
        self._buf = bytearray()
        self._offsets: dict[tuple[bytes, ...], int] = {}
        self._compress = enable_compression

    def __len__(self) -> int:
        return len(self._buf)

    @property
    def offset(self) -> int:
        return len(self._buf)

    def getvalue(self) -> bytes:
        return bytes(self._buf)

    # -- scalars -------------------------------------------------------------

    def write_u8(self, value: int) -> None:
        self._buf.append(value & 0xFF)

    def write_u16(self, value: int) -> None:
        self._buf += struct.pack("!H", value & 0xFFFF)

    def write_u32(self, value: int) -> None:
        self._buf += struct.pack("!I", value & 0xFFFFFFFF)

    def write_bytes(self, data: bytes) -> None:
        self._buf += data

    def patch_u16(self, offset: int, value: int) -> None:
        """Overwrite a previously written 16-bit field (e.g. RDLENGTH)."""
        struct.pack_into("!H", self._buf, offset, value & 0xFFFF)

    # -- names ----------------------------------------------------------------

    def write_name(self, name: Name, compress: bool | None = None) -> None:
        """Write ``name``, emitting a compression pointer when possible.

        DNSSEC rdata names must not be compressed (RFC 3597 / 4034); pass
        ``compress=False`` for those.
        """
        if not name.is_absolute():
            raise ValueError("can only encode absolute names")
        do_compress = self._compress if compress is None else compress
        labels = name.labels
        folded = tuple(label.lower() for label in labels)
        for index in range(len(labels)):
            suffix = folded[index:]
            if suffix == (b"",):
                break
            if do_compress and suffix in self._offsets:
                pointer = self._offsets[suffix]
                self.write_u16(0xC000 | pointer)
                return
            if self.offset <= _MAX_POINTER_TARGET:
                self._offsets.setdefault(suffix, self.offset)
            label = labels[index]
            self.write_u8(len(label))
            self.write_bytes(label)
        self.write_u8(0)


class WireReader:
    """Sequential reader over a DNS wire buffer with pointer chasing."""

    def __init__(self, data: bytes, offset: int = 0):
        self._data = data
        self._pos = offset

    @property
    def pos(self) -> int:
        return self._pos

    def seek(self, offset: int) -> None:
        self._pos = offset

    def remaining(self) -> int:
        return len(self._data) - self._pos

    def at_end(self) -> bool:
        return self._pos >= len(self._data)

    # -- scalars ---------------------------------------------------------------

    def read_u8(self) -> int:
        if self._pos + 1 > len(self._data):
            raise TruncatedMessage("u8 past end of buffer")
        value = self._data[self._pos]
        self._pos += 1
        return value

    def read_u16(self) -> int:
        if self._pos + 2 > len(self._data):
            raise TruncatedMessage("u16 past end of buffer")
        (value,) = struct.unpack_from("!H", self._data, self._pos)
        self._pos += 2
        return value

    def read_u32(self) -> int:
        if self._pos + 4 > len(self._data):
            raise TruncatedMessage("u32 past end of buffer")
        (value,) = struct.unpack_from("!I", self._data, self._pos)
        self._pos += 4
        return value

    def read_bytes(self, count: int) -> bytes:
        if count < 0 or self._pos + count > len(self._data):
            raise TruncatedMessage(f"{count} bytes past end of buffer")
        data = self._data[self._pos : self._pos + count]
        self._pos += count
        return data

    # -- names ------------------------------------------------------------------

    def read_name(self) -> Name:
        """Read a possibly compressed name starting at the current position.

        Pointers must point strictly backwards; cycles and forward pointers
        raise :class:`BadPointer`.
        """
        labels: list[bytes] = []
        total = 0
        pos = self._pos
        jumped = False
        seen: set[int] = set()
        while True:
            if pos >= len(self._data):
                raise TruncatedMessage("name runs past end of buffer")
            length = self._data[pos]
            kind = length & _POINTER_FLAG
            if kind == _POINTER_FLAG:
                if pos + 2 > len(self._data):
                    raise TruncatedMessage("pointer past end of buffer")
                target = ((length & 0x3F) << 8) | self._data[pos + 1]
                if not jumped:
                    self._pos = pos + 2
                    jumped = True
                if target >= pos or target in seen:
                    raise BadPointer(f"bad compression pointer to {target}")
                seen.add(target)
                pos = target
                continue
            if kind != 0:
                raise BadLabelType(f"unsupported label type {kind >> 6:#04b}")
            if length == 0:
                labels.append(b"")
                if not jumped:
                    self._pos = pos + 1
                return Name(labels)
            if pos + 1 + length > len(self._data):
                raise TruncatedMessage("label runs past end of buffer")
            labels.append(self._data[pos + 1 : pos + 1 + length])
            total += length + 1
            if total > MAX_NAME_LENGTH:
                raise BadPointer("name exceeds 255 octets while decompressing")
            pos += 1 + length
