"""Exception hierarchy for the DNS substrate.

Every error raised by :mod:`repro.dns` derives from :class:`DnsError`, so
callers can catch protocol-level problems with one except clause while
letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class DnsError(Exception):
    """Base class for all DNS protocol errors."""


class FormError(DnsError):
    """A DNS message or record could not be parsed (wire-format error)."""


class TruncatedMessage(FormError):
    """The wire buffer ended before the announced data was complete."""


class BadPointer(FormError):
    """A compression pointer was malformed, forward, or cyclic."""


class BadLabelType(FormError):
    """A label had an unknown type (high bits ``01`` or ``10``)."""


class NameTooLong(DnsError):
    """An encoded domain name would exceed 255 octets."""


class LabelTooLong(DnsError):
    """A single label would exceed 63 octets."""


class EmptyLabel(DnsError):
    """A name contained an empty interior label (e.g. ``a..b``)."""


class UnknownRdataType(DnsError):
    """No rdata implementation is registered for a given RR type."""


class MessageTooBig(DnsError):
    """The encoded message does not fit the requested payload size."""


class OptionError(DnsError):
    """An EDNS option could not be parsed or built."""
