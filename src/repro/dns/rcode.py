"""DNS response codes (RCODEs).

The header carries only 4 bits; EDNS(0) extends the RCODE to 12 bits by
contributing its upper 8 bits from the OPT TTL field (RFC 6891).  The
helpers here split and join the two parts, which is exactly the mechanism
whose insufficiency (even at 12 bits, one code must describe the whole
failure) motivated RFC 8914.
"""

from __future__ import annotations

from enum import IntEnum


class Rcode(IntEnum):
    """Response codes from the IANA DNS RCODE registry."""

    NOERROR = 0
    FORMERR = 1
    SERVFAIL = 2
    NXDOMAIN = 3
    NOTIMP = 4
    REFUSED = 5
    YXDOMAIN = 6
    YXRRSET = 7
    NXRRSET = 8
    NOTAUTH = 9  # also BADVERS=16 ambiguity discussed in the paper (RFC 6895)
    NOTZONE = 10
    DSOTYPENI = 11
    BADVERS = 16
    BADKEY = 17
    BADTIME = 18
    BADMODE = 19
    BADNAME = 20
    BADALG = 21
    BADTRUNC = 22
    BADCOOKIE = 23

    @classmethod
    def make(cls, value: "int | str | Rcode") -> "Rcode":
        if isinstance(value, Rcode):
            return value
        if isinstance(value, str):
            return cls[value.upper()]
        return cls(value)

    def __str__(self) -> str:
        return self.name


def header_bits(rcode: int) -> int:
    """The low 4 bits carried in the message header."""
    return rcode & 0x0F


def extended_bits(rcode: int) -> int:
    """The high 8 bits carried in the OPT TTL field (EDNS extended RCODE)."""
    return (rcode >> 4) & 0xFF


def join(header: int, extended: int) -> int:
    """Recombine header bits and the EDNS extension into a full RCODE."""
    return ((extended & 0xFF) << 4) | (header & 0x0F)
