"""Rdata implementations for the common RR types.

Each rdata class knows how to encode itself (normal wire form and the
DNSSEC canonical form used for signing), decode itself from wire, and
print itself in presentation format.  DNSSEC record types live in
:mod:`repro.dns.dnssec_records`.
"""

from __future__ import annotations

import ipaddress
from dataclasses import dataclass
from typing import Callable, ClassVar

from .exceptions import FormError, UnknownRdataType
from .name import Name
from .types import RdataType
from .wire import WireReader, WireWriter


@dataclass(frozen=True)
class Rdata:
    """Base class for all rdata.

    Subclasses set :attr:`rdtype` and register with :func:`register_rdata`.
    Instances are immutable and hashable so they can live in RRset sets.
    """

    rdtype: ClassVar[RdataType]

    _parsers: ClassVar[dict[RdataType, Callable[[WireReader, int], "Rdata"]]] = {}

    # -- wire --------------------------------------------------------------

    def write(self, writer: WireWriter, canonical: bool = False) -> None:
        raise NotImplementedError

    def to_wire(self, canonical: bool = False) -> bytes:
        writer = WireWriter(enable_compression=False)
        self.write(writer, canonical=canonical)
        return writer.getvalue()

    @classmethod
    def parse(cls, rdtype: RdataType, reader: WireReader, rdlength: int) -> "Rdata":
        parser = cls._parsers.get(rdtype)
        if parser is None:
            return GenericRdata.read(reader, rdlength, rdtype)
        end = reader.pos + rdlength
        rdata = parser(reader, rdlength)
        if reader.pos != end:
            raise FormError(
                f"rdata for {rdtype} consumed {reader.pos - (end - rdlength)}"
                f" of {rdlength} octets"
            )
        return rdata

    @classmethod
    def from_wire(cls, rdtype: RdataType, data: bytes) -> "Rdata":
        return cls.parse(rdtype, WireReader(data), len(data))

    # -- presentation --------------------------------------------------------

    def to_text(self) -> str:
        raise NotImplementedError

    def __str__(self) -> str:
        return self.to_text()


def register_rdata(cls: type) -> type:
    """Class decorator wiring an rdata class into the parse registry."""
    Rdata._parsers[cls.rdtype] = cls.read
    return cls


@dataclass(frozen=True)
class GenericRdata(Rdata):
    """RFC 3597 opaque rdata for types without a specific implementation."""

    rdtype_value: RdataType = RdataType.NONE
    data: bytes = b""

    @property
    def rdtype(self) -> RdataType:  # type: ignore[override]
        return self.rdtype_value

    def write(self, writer: WireWriter, canonical: bool = False) -> None:
        writer.write_bytes(self.data)

    @classmethod
    def read(
        cls, reader: WireReader, rdlength: int, rdtype: RdataType = RdataType.NONE
    ) -> "GenericRdata":
        return cls(rdtype_value=rdtype, data=reader.read_bytes(rdlength))

    def to_text(self) -> str:
        return f"\\# {len(self.data)} {self.data.hex()}"


@register_rdata
@dataclass(frozen=True)
class A(Rdata):
    """IPv4 address record."""

    rdtype: ClassVar[RdataType] = RdataType.A
    address: str = "0.0.0.0"

    def __post_init__(self) -> None:
        # Validation and the packed wire form share one parse; rdata is
        # immutable, so the four bytes never go stale.
        object.__setattr__(
            self, "_packed", ipaddress.IPv4Address(self.address).packed
        )

    def write(self, writer: WireWriter, canonical: bool = False) -> None:
        writer.write_bytes(self._packed)

    @classmethod
    def read(cls, reader: WireReader, rdlength: int) -> "A":
        if rdlength != 4:
            raise FormError(f"A rdata must be 4 octets, got {rdlength}")
        return cls(address=str(ipaddress.IPv4Address(reader.read_bytes(4))))

    def to_text(self) -> str:
        return self.address


@register_rdata
@dataclass(frozen=True)
class AAAA(Rdata):
    """IPv6 address record."""

    rdtype: ClassVar[RdataType] = RdataType.AAAA
    address: str = "::"

    def __post_init__(self) -> None:
        parsed = ipaddress.IPv6Address(self.address)
        object.__setattr__(self, "address", str(parsed))
        object.__setattr__(self, "_packed", parsed.packed)

    def write(self, writer: WireWriter, canonical: bool = False) -> None:
        writer.write_bytes(self._packed)

    @classmethod
    def read(cls, reader: WireReader, rdlength: int) -> "AAAA":
        if rdlength != 16:
            raise FormError(f"AAAA rdata must be 16 octets, got {rdlength}")
        return cls(address=str(ipaddress.IPv6Address(reader.read_bytes(16))))

    def to_text(self) -> str:
        return self.address


@dataclass(frozen=True)
class _SingleName(Rdata):
    """Shared implementation for rdata that is exactly one domain name."""

    target: Name = Name.root()

    def write(self, writer: WireWriter, canonical: bool = False) -> None:
        if canonical:
            writer.write_bytes(self.target.canonical_wire())
        else:
            writer.write_name(self.target, compress=False)

    @classmethod
    def read(cls, reader: WireReader, rdlength: int):
        return cls(target=reader.read_name())

    def to_text(self) -> str:
        return str(self.target)


@register_rdata
@dataclass(frozen=True)
class NS(_SingleName):
    rdtype: ClassVar[RdataType] = RdataType.NS


@register_rdata
@dataclass(frozen=True)
class CNAME(_SingleName):
    rdtype: ClassVar[RdataType] = RdataType.CNAME


@register_rdata
@dataclass(frozen=True)
class PTR(_SingleName):
    rdtype: ClassVar[RdataType] = RdataType.PTR


@register_rdata
@dataclass(frozen=True)
class SOA(Rdata):
    """Start of authority."""

    rdtype: ClassVar[RdataType] = RdataType.SOA
    mname: Name = Name.root()
    rname: Name = Name.root()
    serial: int = 0
    refresh: int = 3600
    retry: int = 600
    expire: int = 86400
    minimum: int = 300

    def write(self, writer: WireWriter, canonical: bool = False) -> None:
        if canonical:
            writer.write_bytes(self.mname.canonical_wire())
            writer.write_bytes(self.rname.canonical_wire())
        else:
            writer.write_name(self.mname, compress=False)
            writer.write_name(self.rname, compress=False)
        writer.write_u32(self.serial)
        writer.write_u32(self.refresh)
        writer.write_u32(self.retry)
        writer.write_u32(self.expire)
        writer.write_u32(self.minimum)

    @classmethod
    def read(cls, reader: WireReader, rdlength: int) -> "SOA":
        return cls(
            mname=reader.read_name(),
            rname=reader.read_name(),
            serial=reader.read_u32(),
            refresh=reader.read_u32(),
            retry=reader.read_u32(),
            expire=reader.read_u32(),
            minimum=reader.read_u32(),
        )

    def to_text(self) -> str:
        return (
            f"{self.mname} {self.rname} {self.serial} {self.refresh}"
            f" {self.retry} {self.expire} {self.minimum}"
        )


@register_rdata
@dataclass(frozen=True)
class MX(Rdata):
    rdtype: ClassVar[RdataType] = RdataType.MX
    preference: int = 0
    exchange: Name = Name.root()

    def write(self, writer: WireWriter, canonical: bool = False) -> None:
        writer.write_u16(self.preference)
        if canonical:
            writer.write_bytes(self.exchange.canonical_wire())
        else:
            writer.write_name(self.exchange, compress=False)

    @classmethod
    def read(cls, reader: WireReader, rdlength: int) -> "MX":
        return cls(preference=reader.read_u16(), exchange=reader.read_name())

    def to_text(self) -> str:
        return f"{self.preference} {self.exchange}"


@register_rdata
@dataclass(frozen=True)
class TXT(Rdata):
    rdtype: ClassVar[RdataType] = RdataType.TXT
    strings: tuple[bytes, ...] = (b"",)

    @classmethod
    def from_text_value(cls, *texts: str) -> "TXT":
        return cls(strings=tuple(t.encode("utf-8") for t in texts))

    def write(self, writer: WireWriter, canonical: bool = False) -> None:
        for chunk in self.strings:
            if len(chunk) > 255:
                raise FormError("TXT string exceeds 255 octets")
            writer.write_u8(len(chunk))
            writer.write_bytes(chunk)

    @classmethod
    def read(cls, reader: WireReader, rdlength: int) -> "TXT":
        end = reader.pos + rdlength
        strings = []
        while reader.pos < end:
            length = reader.read_u8()
            strings.append(reader.read_bytes(length))
        return cls(strings=tuple(strings))

    def to_text(self) -> str:
        return " ".join('"%s"' % s.decode("utf-8", "replace") for s in self.strings)


@register_rdata
@dataclass(frozen=True)
class SRV(Rdata):
    rdtype: ClassVar[RdataType] = RdataType.SRV
    priority: int = 0
    weight: int = 0
    port: int = 0
    target: Name = Name.root()

    def write(self, writer: WireWriter, canonical: bool = False) -> None:
        writer.write_u16(self.priority)
        writer.write_u16(self.weight)
        writer.write_u16(self.port)
        if canonical:
            writer.write_bytes(self.target.canonical_wire())
        else:
            writer.write_name(self.target, compress=False)

    @classmethod
    def read(cls, reader: WireReader, rdlength: int) -> "SRV":
        return cls(
            priority=reader.read_u16(),
            weight=reader.read_u16(),
            port=reader.read_u16(),
            target=reader.read_name(),
        )

    def to_text(self) -> str:
        return f"{self.priority} {self.weight} {self.port} {self.target}"


@register_rdata
@dataclass(frozen=True)
class CAA(Rdata):
    rdtype: ClassVar[RdataType] = RdataType.CAA
    flags: int = 0
    tag: bytes = b"issue"
    value: bytes = b""

    def write(self, writer: WireWriter, canonical: bool = False) -> None:
        writer.write_u8(self.flags)
        writer.write_u8(len(self.tag))
        writer.write_bytes(self.tag)
        writer.write_bytes(self.value)

    @classmethod
    def read(cls, reader: WireReader, rdlength: int) -> "CAA":
        end = reader.pos + rdlength
        flags = reader.read_u8()
        taglen = reader.read_u8()
        tag = reader.read_bytes(taglen)
        value = reader.read_bytes(end - reader.pos)
        return cls(flags=flags, tag=tag, value=value)

    def to_text(self) -> str:
        return f'{self.flags} {self.tag.decode()} "{self.value.decode("utf-8", "replace")}"'


def rdata_class_for(rdtype: RdataType) -> Callable[[WireReader, int], Rdata]:
    parser = Rdata._parsers.get(rdtype)
    if parser is None:
        raise UnknownRdataType(str(rdtype))
    return parser
