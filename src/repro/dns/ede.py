"""Extended DNS Errors (RFC 8914).

Implements the EDE EDNS option (OPTION-CODE 15): a 16-bit INFO-CODE plus
an optional UTF-8 EXTRA-TEXT, and the IANA "Extended DNS Error Codes"
registry as of the paper's measurement (codes 0–29; Table 1 of the
paper).  Extended errors are *supplementary*: they never change the
RCODE, and any combination of RCODE and INFO-CODE is legal.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum

from .edns import EdnsOption, OptionCode
from .exceptions import OptionError


class EdeCode(IntEnum):
    """INFO-CODE values from the IANA registry (paper Table 1)."""

    OTHER = 0
    UNSUPPORTED_DNSKEY_ALGORITHM = 1
    UNSUPPORTED_DS_DIGEST_TYPE = 2
    STALE_ANSWER = 3
    FORGED_ANSWER = 4
    DNSSEC_INDETERMINATE = 5
    DNSSEC_BOGUS = 6
    SIGNATURE_EXPIRED = 7
    SIGNATURE_NOT_YET_VALID = 8
    DNSKEY_MISSING = 9
    RRSIGS_MISSING = 10
    NO_ZONE_KEY_BIT_SET = 11
    NSEC_MISSING = 12
    CACHED_ERROR = 13
    NOT_READY = 14
    BLOCKED = 15
    CENSORED = 16
    FILTERED = 17
    PROHIBITED = 18
    STALE_NXDOMAIN_ANSWER = 19
    NOT_AUTHORITATIVE = 20
    NOT_SUPPORTED = 21
    NO_REACHABLE_AUTHORITY = 22
    NETWORK_ERROR = 23
    INVALID_DATA = 24
    SIGNATURE_EXPIRED_BEFORE_VALID = 25
    TOO_EARLY = 26
    UNSUPPORTED_NSEC3_ITERATIONS_VALUE = 27
    UNABLE_TO_CONFORM_TO_POLICY = 28
    SYNTHESIZED = 29


#: Human-readable purposes, exactly as listed in the paper's Table 1.
EDE_DESCRIPTIONS: dict[EdeCode, str] = {
    EdeCode.OTHER: "Other",
    EdeCode.UNSUPPORTED_DNSKEY_ALGORITHM: "Unsupported DNSKEY Algorithm",
    EdeCode.UNSUPPORTED_DS_DIGEST_TYPE: "Unsupported DS Digest Type",
    EdeCode.STALE_ANSWER: "Stale Answer",
    EdeCode.FORGED_ANSWER: "Forged Answer",
    EdeCode.DNSSEC_INDETERMINATE: "DNSSEC Indeterminate",
    EdeCode.DNSSEC_BOGUS: "DNSSEC Bogus",
    EdeCode.SIGNATURE_EXPIRED: "Signature Expired",
    EdeCode.SIGNATURE_NOT_YET_VALID: "Signature Not Yet Valid",
    EdeCode.DNSKEY_MISSING: "DNSKEY Missing",
    EdeCode.RRSIGS_MISSING: "RRSIGs Missing",
    EdeCode.NO_ZONE_KEY_BIT_SET: "No Zone Key Bit Set",
    EdeCode.NSEC_MISSING: "NSEC Missing",
    EdeCode.CACHED_ERROR: "Cached Error",
    EdeCode.NOT_READY: "Not Ready",
    EdeCode.BLOCKED: "Blocked",
    EdeCode.CENSORED: "Censored",
    EdeCode.FILTERED: "Filtered",
    EdeCode.PROHIBITED: "Prohibited",
    EdeCode.STALE_NXDOMAIN_ANSWER: "Stale NXDOMAIN Answer",
    EdeCode.NOT_AUTHORITATIVE: "Not Authoritative",
    EdeCode.NOT_SUPPORTED: "Not Supported",
    EdeCode.NO_REACHABLE_AUTHORITY: "No Reachable Authority",
    EdeCode.NETWORK_ERROR: "Network Error",
    EdeCode.INVALID_DATA: "Invalid Data",
    EdeCode.SIGNATURE_EXPIRED_BEFORE_VALID: "Signature Expired before Valid",
    EdeCode.TOO_EARLY: "Too Early",
    EdeCode.UNSUPPORTED_NSEC3_ITERATIONS_VALUE: "Unsupported NSEC3 Iter. Value",
    EdeCode.UNABLE_TO_CONFORM_TO_POLICY: "Unable to conform to policy",
    EdeCode.SYNTHESIZED: "Synthesized",
}

#: Codes defined directly by RFC 8914 (the first 25, i.e. 0..24).
RFC8914_CODES = frozenset(EdeCode(code) for code in range(25))

#: Later IANA additions discussed by the paper (25..29).
POST_RFC_CODES = frozenset(EdeCode(code) for code in range(25, 30))


class EdeCategory:
    """Paper Section 2 taxonomy of INFO-CODEs by DNS operational aspect."""

    DNSSEC_VALIDATION = "dnssec-validation"
    CACHING = "caching"
    RESOLVER_POLICY = "resolver-policy"
    SOFTWARE_OPERATION = "software-operation"
    OTHER = "other"


#: Section 2 of the paper: i) DNSSEC validation (1, 2, 5-12, 25, 27),
#: ii) caching (3, 13, 19, 29), iii) resolver policies (4, 15-18, 20),
#: iv) software operation (14, 21-23), v) others (0, 24, 26, 28).
EDE_CATEGORIES: dict[EdeCode, str] = {
    **{
        EdeCode(code): EdeCategory.DNSSEC_VALIDATION
        for code in (1, 2, 5, 6, 7, 8, 9, 10, 11, 12, 25, 27)
    },
    **{EdeCode(code): EdeCategory.CACHING for code in (3, 13, 19, 29)},
    **{EdeCode(code): EdeCategory.RESOLVER_POLICY for code in (4, 15, 16, 17, 18, 20)},
    **{EdeCode(code): EdeCategory.SOFTWARE_OPERATION for code in (14, 21, 22, 23)},
    **{EdeCode(code): EdeCategory.OTHER for code in (0, 24, 26, 28)},
}


def describe(code: int) -> str:
    """Registry description for ``code``; unassigned codes get a placeholder."""
    try:
        return EDE_DESCRIPTIONS[EdeCode(code)]
    except ValueError:
        return f"Unassigned EDE code {code}"


@dataclass(frozen=True)
class ExtendedError(EdnsOption):
    """One Extended DNS Error option instance.

    ``info_code`` is kept as a plain int so unassigned codes round-trip;
    use :attr:`known_code` for the registry enum when it exists.
    """

    code: int = OptionCode.EDE
    data: bytes = b""
    info_code: int = 0
    extra_text: str = ""

    @classmethod
    def make(cls, info_code: "int | EdeCode", extra_text: str = "") -> "ExtendedError":
        return cls(info_code=int(info_code), extra_text=extra_text)

    @property
    def known_code(self) -> EdeCode | None:
        try:
            return EdeCode(self.info_code)
        except ValueError:
            return None

    @property
    def description(self) -> str:
        return describe(self.info_code)

    @property
    def category(self) -> str:
        known = self.known_code
        if known is None:
            return EdeCategory.OTHER
        return EDE_CATEGORIES[known]

    def to_wire_data(self) -> bytes:
        return self.info_code.to_bytes(2, "big") + self.extra_text.encode("utf-8")

    @classmethod
    def from_wire_data(cls, data: bytes) -> "ExtendedError":
        if len(data) < 2:
            raise OptionError("EDE option shorter than 2 octets")
        info_code = int.from_bytes(data[:2], "big")
        # RFC 8914: EXTRA-TEXT is UTF-8, may be absent, not NUL-terminated;
        # a trailing NUL from sloppy encoders is tolerated and stripped.
        text = data[2:].rstrip(b"\x00").decode("utf-8", errors="replace")
        return cls(info_code=info_code, extra_text=text)

    def __str__(self) -> str:
        if self.extra_text:
            return f"EDE {self.info_code} ({self.description}): {self.extra_text}"
        return f"EDE {self.info_code} ({self.description})"


EdnsOption.register(OptionCode.EDE, ExtendedError.from_wire_data)
