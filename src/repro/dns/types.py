"""RR type, class, and opcode registries."""

from __future__ import annotations

from enum import IntEnum


class RdataType(IntEnum):
    """Resource record TYPE values (IANA DNS parameters registry)."""

    NONE = 0
    A = 1
    NS = 2
    CNAME = 5
    SOA = 6
    PTR = 12
    MX = 15
    TXT = 16
    AAAA = 28
    SRV = 33
    OPT = 41
    DS = 43
    RRSIG = 46
    NSEC = 47
    DNSKEY = 48
    NSEC3 = 50
    NSEC3PARAM = 51
    AXFR = 252  # QTYPE only: full zone transfer (RFC 5936)
    CAA = 257
    ANY = 255

    @classmethod
    def make(cls, value: "int | str | RdataType") -> "RdataType":
        if isinstance(value, RdataType):
            return value
        if isinstance(value, str):
            try:
                return cls[value.upper()]
            except KeyError:
                if value.upper().startswith("TYPE"):
                    return cls(int(value[4:]))
                raise
        return cls(value)

    def __str__(self) -> str:  # presentation format
        return self.name


class RdataClass(IntEnum):
    """Resource record CLASS values."""

    RESERVED0 = 0
    IN = 1
    CH = 3
    HS = 4
    NONE = 254
    ANY = 255

    @classmethod
    def make(cls, value: "int | str | RdataClass") -> "RdataClass":
        if isinstance(value, RdataClass):
            return value
        if isinstance(value, str):
            return cls[value.upper()]
        return cls(value)

    def __str__(self) -> str:
        return self.name


class Opcode(IntEnum):
    QUERY = 0
    IQUERY = 1
    STATUS = 2
    NOTIFY = 4
    UPDATE = 5
    DSO = 6


#: Types whose rdata embeds domain names that must never be compressed and
#: must be lowercased in DNSSEC canonical form (RFC 4034 section 6.2).
CANONICAL_NAME_TYPES = frozenset(
    {
        RdataType.NS,
        RdataType.CNAME,
        RdataType.SOA,
        RdataType.PTR,
        RdataType.MX,
        RdataType.SRV,
        RdataType.RRSIG,
        RdataType.NSEC,
    }
)

#: Metadata / pseudo types that can never appear in zone data.
PSEUDO_TYPES = frozenset({RdataType.OPT, RdataType.ANY})
