"""Domain names.

Implements the RFC 1035 name model: a sequence of labels, each at most 63
octets, with the whole encoded name at most 255 octets.  Names are
immutable and hashable.  Comparison and hashing are case-insensitive, as
required by RFC 4343, but the original octets are preserved for display.

The canonical (DNSSEC) form used for signing and NSEC3 hashing is the
lowercase, uncompressed wire form (RFC 4034 section 6.2).
"""

from __future__ import annotations

from functools import total_ordering
from typing import Iterable, Iterator

from .exceptions import EmptyLabel, LabelTooLong, NameTooLong

MAX_LABEL_LENGTH = 63
MAX_NAME_LENGTH = 255

_ESCAPED = {0x2E: "\\.", 0x5C: "\\\\"}  # '.' and '\'


def _label_to_text(label: bytes) -> str:
    out = []
    for byte in label:
        if byte in _ESCAPED:
            out.append(_ESCAPED[byte])
        elif 0x21 <= byte <= 0x7E:
            out.append(chr(byte))
        else:
            out.append("\\%03d" % byte)
    return "".join(out)


def _text_to_labels(text: str) -> list[bytes]:
    """Split a presentation-format name into raw labels, handling escapes."""
    labels: list[bytes] = []
    current = bytearray()
    i = 0
    n = len(text)
    while i < n:
        char = text[i]
        if char == "\\":
            if i + 3 < n + 1 and text[i + 1 : i + 4].isdigit():
                current.append(int(text[i + 1 : i + 4]) & 0xFF)
                i += 4
            elif i + 1 < n:
                current.append(ord(text[i + 1]))
                i += 2
            else:
                current.append(ord("\\"))
                i += 1
        elif char == ".":
            labels.append(bytes(current))
            current = bytearray()
            i += 1
        else:
            current.append(ord(char))
            i += 1
    labels.append(bytes(current))
    return labels


@total_ordering
class Name:
    """An immutable, absolute or relative DNS name.

    A name is *absolute* when its final label is the empty root label.
    Most of this library works with absolute names; :meth:`from_text`
    produces absolute names unless told otherwise.
    """

    __slots__ = ("_labels", "_folded", "_hash")

    def __init__(self, labels: Iterable[bytes]):
        labels = tuple(labels)
        for index, label in enumerate(labels):
            if len(label) > MAX_LABEL_LENGTH:
                raise LabelTooLong(f"label exceeds 63 octets: {label[:16]!r}...")
            if not label and index != len(labels) - 1:
                raise EmptyLabel("empty label is only allowed as the root")
        # encoded length: one length octet per label plus the label bytes
        encoded = sum(len(label) + 1 for label in labels)
        if labels and labels[-1] == b"":
            pass  # root's length octet already counted
        else:
            encoded += 1  # room for the root if the name becomes absolute
        if encoded > MAX_NAME_LENGTH:
            raise NameTooLong(f"name would encode to {encoded} octets")
        object.__setattr__(self, "_labels", labels)
        object.__setattr__(self, "_folded", tuple(l.lower() for l in labels))
        object.__setattr__(self, "_hash", hash(self._folded))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Name is immutable")

    # -- constructors -----------------------------------------------------

    @classmethod
    def root(cls) -> "Name":
        return _ROOT

    @classmethod
    def from_text(cls, text: str, origin: "Name | None" = None) -> "Name":
        """Parse a presentation-format name.

        ``origin`` (an absolute name) is appended when ``text`` is relative.
        ``"."`` and ``"@"`` denote the root and the origin respectively.
        """
        if text == ".":
            return _ROOT
        if text == "@":
            if origin is None:
                raise ValueError("'@' used without an origin")
            return origin
        labels = _text_to_labels(text)
        if labels and labels[-1] == b"":
            return cls(labels)
        if origin is not None:
            if not origin.is_absolute():
                raise ValueError("origin must be absolute")
            return cls(tuple(labels) + origin.labels)
        return cls(labels)

    @classmethod
    def from_labels(cls, labels: Iterable[bytes]) -> "Name":
        return cls(labels)

    @classmethod
    def from_wire_labels(cls, labels: Iterable[bytes]) -> "Name":
        """Fast-path constructor for labels a wire parser already vetted.

        The parser guarantees each label is at most 63 octets (the wire
        length byte cannot say otherwise) and that only the final label
        is empty, so this skips the per-label loop and re-checks only
        the total encoded length — the one bound the label walk cannot
        enforce on its own.  Raises :class:`NameTooLong` exactly where
        :class:`Name` would.
        """
        labels = tuple(labels)
        encoded = sum(len(label) + 1 for label in labels)
        if not (labels and labels[-1] == b""):
            encoded += 1
        if encoded > MAX_NAME_LENGTH:
            raise NameTooLong(f"name would encode to {encoded} octets")
        self = object.__new__(cls)
        folded = tuple(label.lower() for label in labels)
        object.__setattr__(self, "_labels", labels)
        object.__setattr__(self, "_folded", folded)
        object.__setattr__(self, "_hash", hash(folded))
        return self

    # -- properties --------------------------------------------------------

    @property
    def labels(self) -> tuple[bytes, ...]:
        return self._labels

    @property
    def folded_labels(self) -> tuple[bytes, ...]:
        """Lowercased labels, precomputed at construction (RFC 4343).

        Writers and canonical-form consumers should prefer this over
        re-folding ``labels`` — it is already paid for.
        """
        return self._folded

    def is_absolute(self) -> bool:
        return bool(self._labels) and self._labels[-1] == b""

    def is_root(self) -> bool:
        return self._labels == (b"",)

    def is_wild(self) -> bool:
        return bool(self._labels) and self._labels[0] == b"*"

    def __len__(self) -> int:
        """Encoded wire length in octets (for absolute names)."""
        return sum(len(label) + 1 for label in self._labels)

    def label_count(self) -> int:
        return len(self._labels)

    # -- relations ----------------------------------------------------------

    def is_subdomain_of(self, other: "Name") -> bool:
        """True when *self* equals *other* or is below it."""
        if len(other._folded) > len(self._folded):
            return False
        if not other._folded:
            return True
        return self._folded[len(self._folded) - len(other._folded) :] == other._folded

    def is_strict_subdomain_of(self, other: "Name") -> bool:
        return self != other and self.is_subdomain_of(other)

    def parent(self) -> "Name":
        if self.is_root() or not self._labels:
            raise ValueError("the root has no parent")
        return Name(self._labels[1:])

    def relativize(self, origin: "Name") -> "Name":
        """Strip ``origin`` from the end of *self* (must be a subdomain)."""
        if not self.is_subdomain_of(origin):
            raise ValueError(f"{self} is not a subdomain of {origin}")
        return Name(self._labels[: len(self._labels) - len(origin._labels)])

    def concatenate(self, suffix: "Name") -> "Name":
        if self.is_absolute():
            raise ValueError("cannot concatenate to an absolute name")
        return Name(self._labels + suffix._labels)

    def prepend(self, label: bytes | str) -> "Name":
        if isinstance(label, str):
            (raw,) = _text_to_labels(label)
        else:
            raw = label
        return Name((raw,) + self._labels)

    def split(self, depth: int) -> tuple["Name", "Name"]:
        """Split into (prefix, suffix) where suffix has ``depth`` labels."""
        if depth < 0 or depth > len(self._labels):
            raise ValueError("depth out of range")
        cut = len(self._labels) - depth
        return Name(self._labels[:cut]), Name(self._labels[cut:])

    def common_ancestor(self, other: "Name") -> "Name":
        """Deepest name that both *self* and *other* are subdomains of."""
        shared: list[bytes] = []
        for a, b in zip(reversed(self._folded), reversed(other._folded)):
            if a != b:
                break
            shared.append(a)
        shared.reverse()
        return Name(shared) if shared else Name(())

    # -- wire / canonical form ----------------------------------------------

    def to_wire(self) -> bytes:
        """Uncompressed wire form (original case)."""
        out = bytearray()
        for label in self._labels:
            out.append(len(label))
            out += label
        if not self.is_absolute():
            raise ValueError("cannot encode a relative name")
        return bytes(out)

    def canonical_wire(self) -> bytes:
        """RFC 4034 canonical form: lowercase, uncompressed."""
        out = bytearray()
        for label in self._folded:
            out.append(len(label))
            out += label
        if not self.is_absolute():
            raise ValueError("cannot encode a relative name")
        return bytes(out)

    def canonical(self) -> "Name":
        return Name(self._folded)

    # -- dunder -------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Name):
            return NotImplemented
        return self._folded == other._folded

    def __lt__(self, other: "Name") -> bool:
        """Canonical DNSSEC ordering (RFC 4034 section 6.1)."""
        if not isinstance(other, Name):
            return NotImplemented
        a = tuple(reversed([l for l in self._folded if l != b""]))
        b = tuple(reversed([l for l in other._folded if l != b""]))
        return a < b

    def __hash__(self) -> int:
        return self._hash

    def __iter__(self) -> Iterator[bytes]:
        return iter(self._labels)

    def __str__(self) -> str:
        if self.is_root():
            return "."
        parts = [_label_to_text(label) for label in self._labels if label != b""]
        return ".".join(parts) + ("." if self.is_absolute() else "")

    def __repr__(self) -> str:
        return f"<Name {self}>"


_ROOT = Name((b"",))
