"""RRsets: all records sharing (owner name, class, type) and a TTL."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from .name import Name
from .rdata import Rdata
from .types import RdataClass, RdataType
from .wire import WireWriter


@dataclass
class RRset:
    """An RRset in the RFC 2181 sense.

    Rdatas keep insertion order but compare as sets; duplicates are
    silently ignored on add, matching server behaviour.
    """

    name: Name
    rdtype: RdataType
    ttl: int = 300
    rdclass: RdataClass = RdataClass.IN
    rdatas: list[Rdata] = field(default_factory=list)

    @classmethod
    def of(
        cls,
        name: Name,
        rdtype: RdataType,
        *rdatas: Rdata,
        ttl: int = 300,
        rdclass: RdataClass = RdataClass.IN,
    ) -> "RRset":
        rrset = cls(name=name, rdtype=rdtype, ttl=ttl, rdclass=rdclass)
        for rdata in rdatas:
            rrset.add(rdata)
        return rrset

    def add(self, rdata: Rdata) -> None:
        if rdata not in self.rdatas:
            self.rdatas.append(rdata)

    def key(self) -> tuple[Name, RdataClass, RdataType]:
        return (self.name, self.rdclass, self.rdtype)

    def __iter__(self) -> Iterator[Rdata]:
        return iter(self.rdatas)

    def __len__(self) -> int:
        return len(self.rdatas)

    def __bool__(self) -> bool:
        return bool(self.rdatas)

    def match(self, name: Name, rdtype: RdataType, rdclass: RdataClass = RdataClass.IN) -> bool:
        return self.name == name and self.rdtype == rdtype and self.rdclass == rdclass

    def same_rrset(self, other: "RRset") -> bool:
        """Equal owner/class/type and equal rdata *sets* (TTL ignored)."""
        return (
            self.key() == other.key()
            and frozenset(self.rdatas) == frozenset(other.rdatas)
        )

    def copy(self, ttl: int | None = None) -> "RRset":
        return RRset(
            name=self.name,
            rdtype=self.rdtype,
            ttl=self.ttl if ttl is None else ttl,
            rdclass=self.rdclass,
            rdatas=list(self.rdatas),
        )

    # -- wire --------------------------------------------------------------

    def write(self, writer: WireWriter) -> int:
        """Write every RR of this set; returns the record count."""
        for rdata in self.rdatas:
            writer.write_name(self.name)
            writer.write_u16(int(self.rdtype))
            writer.write_u16(int(self.rdclass))
            writer.write_u32(self.ttl)
            rdlen_at = writer.offset
            writer.write_u16(0)
            start = writer.offset
            rdata.write(writer)
            writer.patch_u16(rdlen_at, writer.offset - start)
        return len(self.rdatas)

    def canonical_rdatas(self) -> list[bytes]:
        """Canonically-encoded rdatas, sorted (RFC 4034 section 6.3)."""
        return sorted(rdata.to_wire(canonical=True) for rdata in self.rdatas)

    def to_text(self) -> str:
        lines = [
            f"{self.name} {self.ttl} {self.rdclass} {self.rdtype} {rdata.to_text()}"
            for rdata in self.rdatas
        ]
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.to_text()


def find_rrset(
    rrsets: Iterable[RRset],
    name: Name,
    rdtype: RdataType,
    rdclass: RdataClass = RdataClass.IN,
) -> RRset | None:
    """First RRset in ``rrsets`` matching the triple, or None."""
    for rrset in rrsets:
        if rrset.match(name, rdtype, rdclass):
            return rrset
    return None
