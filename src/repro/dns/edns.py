"""EDNS(0) — the OPT pseudo resource record and its options (RFC 6891).

The OPT record abuses the fixed RR fields: CLASS carries the requester's
UDP payload size, and the TTL packs the extended-RCODE bits, the EDNS
version, and the DO ("DNSSEC OK") flag.  Options live in the RDATA as
(OPTION-CODE, OPTION-LENGTH, OPTION-DATA) triples; RFC 8914's Extended
DNS Error is option code 15 and is implemented in :mod:`repro.dns.ede`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, ClassVar

from .exceptions import OptionError
from .wire import WireReader, WireWriter


class OptionCode:
    """Well-known EDNS option codes."""

    NSID = 3
    CLIENT_SUBNET = 8
    COOKIE = 10
    PADDING = 12
    EDE = 15


@dataclass(frozen=True)
class EdnsOption:
    """A generic (unparsed) EDNS option.

    Subclasses register themselves in :attr:`_registry` keyed by option
    code so :meth:`parse` can produce typed options.
    """

    code: int
    data: bytes = b""

    _registry: ClassVar[dict[int, Callable[[bytes], "EdnsOption"]]] = {}

    @classmethod
    def register(cls, code: int, parser: Callable[[bytes], "EdnsOption"]) -> None:
        cls._registry[code] = parser

    @classmethod
    def parse(cls, code: int, data: bytes) -> "EdnsOption":
        parser = cls._registry.get(code)
        if parser is not None:
            return parser(data)
        return cls(code=code, data=data)

    def to_wire_data(self) -> bytes:
        return self.data


@dataclass(frozen=True)
class CookieOption(EdnsOption):
    """DNS Cookies (RFC 7873) — carried but not enforced by this stack."""

    code: int = OptionCode.COOKIE
    data: bytes = b""

    @property
    def client_cookie(self) -> bytes:
        return self.data[:8]

    @property
    def server_cookie(self) -> bytes:
        return self.data[8:]


@dataclass(frozen=True)
class PaddingOption(EdnsOption):
    """EDNS padding (RFC 7830)."""

    code: int = OptionCode.PADDING
    data: bytes = b""

    @classmethod
    def of_length(cls, length: int) -> "PaddingOption":
        return cls(data=b"\x00" * length)


EdnsOption.register(OptionCode.COOKIE, lambda d: CookieOption(data=d))
EdnsOption.register(OptionCode.PADDING, lambda d: PaddingOption(data=d))


#: Default advertised UDP payload size, per current operational guidance.
DEFAULT_PAYLOAD = 1232


@dataclass
class Edns:
    """The EDNS state of one message (decoded OPT record)."""

    payload: int = DEFAULT_PAYLOAD
    extended_rcode_bits: int = 0  # upper 8 bits of the 12-bit RCODE
    version: int = 0
    dnssec_ok: bool = False
    options: list[EdnsOption] = field(default_factory=list)

    def option(self, code: int) -> EdnsOption | None:
        """First option with the given code, or None."""
        for opt in self.options:
            if opt.code == code:
                return opt
        return None

    def options_with_code(self, code: int) -> list[EdnsOption]:
        return [opt for opt in self.options if opt.code == code]

    # -- wire ------------------------------------------------------------------

    def write(self, writer: WireWriter) -> None:
        """Append the OPT RR for this EDNS state to ``writer``."""
        writer.write_u8(0)  # root owner name
        writer.write_u16(41)  # TYPE = OPT
        writer.write_u16(self.payload)  # CLASS = payload size
        ttl = (
            ((self.extended_rcode_bits & 0xFF) << 24)
            | ((self.version & 0xFF) << 16)
            | (0x8000 if self.dnssec_ok else 0)
        )
        writer.write_u32(ttl)
        rdlen_at = writer.offset
        writer.write_u16(0)
        start = writer.offset
        for opt in self.options:
            data = opt.to_wire_data()
            writer.write_u16(opt.code)
            writer.write_u16(len(data))
            writer.write_bytes(data)
        writer.patch_u16(rdlen_at, writer.offset - start)

    @classmethod
    def from_opt_fields(cls, klass: int, ttl: int, rdata: bytes) -> "Edns":
        """Decode the OPT record's overloaded fixed fields and options."""
        edns = cls(
            payload=klass,
            extended_rcode_bits=(ttl >> 24) & 0xFF,
            version=(ttl >> 16) & 0xFF,
            dnssec_ok=bool(ttl & 0x8000),
        )
        reader = WireReader(rdata)
        while not reader.at_end():
            if reader.remaining() < 4:
                raise OptionError("truncated EDNS option header")
            code = reader.read_u16()
            length = reader.read_u16()
            data = reader.read_bytes(length)
            edns.options.append(EdnsOption.parse(code, data))
        return edns
