"""Rendered-response wire cache: zero-copy serving of encoded answers.

ZDNS-style measurement throughput comes from making the per-query byte
path cheap.  This module caches *fully encoded* response wires keyed by
the query's own bytes (which subsume qname, qtype, DO, CD, EDNS payload
and header flags), so a cache hit serves a stored buffer with two
in-place patches and zero ``Message`` work:

* the two message-ID octets are rewritten from the incoming query, and
* TTL fields that must decrement are re-computed from the *fractional*
  virtual-clock expiry recorded at store time — exactly
  ``max(1, int(expires_at - now))``, the same formula the rrset cache
  uses, so a patched hit is byte-identical to the uncached answer.

Everything here is parse-or-refuse: a wire the offset walker cannot
account for byte-by-byte (truncated records, trailing junk, unknown
label types) is never cached, because a wrong TTL offset would corrupt
the served response.  The walker treats a compression pointer as a
2-byte terminal and never records the OPT pseudo-record's TTL field —
that u32 holds the extended RCODE and EDNS flags, not a TTL.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

HEADER_LENGTH = 12
_OPT_TYPE = 41


class RenderRefused(ValueError):
    """The wire cannot be safely offset-mapped; refuse to cache it."""


def skip_name(wire, pos: int) -> int:
    """Return the offset just past the name starting at ``pos``.

    A compression pointer (top bits ``11``) is a 2-byte terminal; the
    reserved label types ``01``/``10`` are refused outright.
    """
    limit = len(wire)
    while True:
        if pos >= limit:
            raise RenderRefused("name runs past end of message")
        length = wire[pos]
        if length == 0:
            return pos + 1
        kind = length & 0xC0
        if kind == 0xC0:
            if pos + 2 > limit:
                raise RenderRefused("truncated compression pointer")
            return pos + 2
        if kind:
            raise RenderRefused(f"reserved label type 0x{kind:02x}")
        pos += 1 + length


def response_ttl_offsets(wire) -> list[int]:
    """Offsets of every patchable TTL field, in record order.

    Walks the question and all three record sections; every byte of the
    message must be accounted for (no trailing junk) or
    :class:`RenderRefused` is raised.  The OPT record's TTL field is
    *excluded* — patching it would clobber the extended RCODE.
    """
    limit = len(wire)
    if limit < HEADER_LENGTH:
        raise RenderRefused("message shorter than header")
    qdcount, ancount, nscount, arcount = struct.unpack_from(">HHHH", wire, 4)
    pos = HEADER_LENGTH
    for _ in range(qdcount):
        pos = skip_name(wire, pos) + 4  # qtype + qclass
        if pos > limit:
            raise RenderRefused("truncated question")
    offsets: list[int] = []
    for _ in range(ancount + nscount + arcount):
        pos = skip_name(wire, pos)
        if pos + 10 > limit:
            raise RenderRefused("truncated record header")
        rdtype, _rdclass = struct.unpack_from(">HH", wire, pos)
        rdlength = struct.unpack_from(">H", wire, pos + 8)[0]
        if rdtype != _OPT_TYPE:
            offsets.append(pos + 4)
        pos += 10 + rdlength
        if pos > limit:
            raise RenderRefused("record data runs past end of message")
    if pos != limit:
        raise RenderRefused("trailing bytes after last record")
    return offsets


def wire_key(query_wire) -> bytes | None:
    """Cache key for a query wire: everything but the message ID.

    The remaining bytes carry the header flags (RD/CD/opcode), the full
    case-sensitive qname, qtype, qclass, and the whole OPT record (DO
    bit, payload size, options) — so two queries that may legally
    receive different answers can never alias to one key.  Returns None
    for datagrams too short to be a DNS query.
    """
    if len(query_wire) <= HEADER_LENGTH:
        return None
    return bytes(query_wire[2:])


_FLAG_TC = 0x0200


def parse_equivalent(response, wire) -> bool:
    """True when ``Message.from_wire(wire)`` provably reproduces ``response``.

    The fabric's in-process fast path hands a server-built response
    ``Message`` back to the resolver alongside its encoding so the
    resolver can skip the re-parse.  That is only sound when the parse
    is an identity, which this proves from cheap invariants alone:

    * no truncation happened during encode (the wire's TC bit matches),
    * the RCODE fits the 4-bit header field or an OPT carries the
      extended bits,
    * no EDNS options are present (option objects are not proven to
      round-trip by type),
    * no two RRsets of a section share ``(name, type, class)`` — the
      parser folds such rows into one RRset with the minimum TTL,
    * every RRset carries at least one rdata (empty ones vanish on the
      wire), and the header counts add up exactly.

    Anything unprovable returns False and the caller falls back to
    parsing the wire, so refusals cost correctness nothing.
    """
    if len(wire) < HEADER_LENGTH:
        return False
    flags = int.from_bytes(wire[2:4], "big")
    if bool(flags & _FLAG_TC) != bool(response.tc):
        return False
    if response.rcode > 0xF and response.edns is None:
        return False
    if response.edns is not None and response.edns.options:
        return False
    qdcount, ancount, nscount, arcount = struct.unpack_from(">HHHH", wire, 4)
    if qdcount != len(response.question):
        return False
    sections = (
        (ancount, response.answer, False),
        (nscount, response.authority, False),
        (arcount, response.additional, True),
    )
    for count, section, holds_opt in sections:
        total = 0
        seen = set()
        for rrset in section:
            if not rrset.rdatas:
                return False
            skey = (rrset.name, int(rrset.rdtype), int(rrset.rdclass))
            if skey in seen:
                return False
            seen.add(skey)
            total += len(rrset.rdatas)
        if holds_opt and response.edns is not None:
            total += 1
        if count != total:
            return False
    return True


@dataclass
class RenderCacheStats:
    hits: int = 0
    misses: int = 0
    stores: int = 0
    expired: int = 0
    evictions: int = 0
    #: Wires the offset walker refused to map (never cached).
    refusals: int = 0

    def snapshot(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "expired": self.expired,
            "evictions": self.evictions,
            "refusals": self.refusals,
        }

    def add(self, other: "RenderCacheStats") -> None:
        self.hits += other.hits
        self.misses += other.misses
        self.stores += other.stores
        self.expired += other.expired
        self.evictions += other.evictions
        self.refusals += other.refusals


class _Entry:
    __slots__ = ("wire", "expires_at", "ttl_patches")

    def __init__(self, wire, expires_at, ttl_patches):
        self.wire = wire
        self.expires_at = expires_at  # float | None (None = never)
        self.ttl_patches = ttl_patches  # tuple[(offset, fractional expiry)]


class RenderedWireCache:
    """TTL-bounded cache of rendered response wires for one endpoint.

    ``clock`` may be None for endpoints whose answers are time-constant
    (a pure authoritative server without expiry); such a cache can only
    hold entries stored with ``expires_at=None`` and no TTL patches.
    """

    def __init__(self, clock=None, max_entries: int = 8192):
        self._clock = clock
        self.max_entries = int(max_entries)
        self._entries: dict = {}
        self.stats = RenderCacheStats()

    def _now(self) -> float:
        return self._clock.now() if self._clock is not None else 0.0

    # -- serving -------------------------------------------------------------

    def serve(self, key, query_wire) -> bytes | None:
        """The cached response for ``key`` patched for this query, or None.

        The stored buffer is copied once; the message ID comes from the
        incoming query and every decrementing TTL field is recomputed as
        ``max(1, int(expires_at - now))`` against the virtual clock.
        """
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        now = self._now()
        if entry.expires_at is not None and now >= entry.expires_at:
            del self._entries[key]
            self.stats.expired += 1
            self.stats.misses += 1
            return None
        out = bytearray(entry.wire)
        out[0:2] = query_wire[0:2]
        for offset, expires_at in entry.ttl_patches:
            struct.pack_into(">I", out, offset, max(1, int(expires_at - now)))
        self.stats.hits += 1
        return bytes(out)

    # -- storing -------------------------------------------------------------

    def store(
        self,
        key,
        wire: bytes,
        *,
        expires_at: float | None = None,
        decrement_answers_until: float | None = None,
        expire_after_min_ttl: bool = False,
    ) -> bool:
        """Cache ``wire`` under ``key``; returns False when refused.

        ``decrement_answers_until`` marks the answer-section records
        (the first ANCOUNT TTL fields) for per-hit decrement against
        that fractional expiry; authority/additional TTLs are served
        verbatim, which matches how the negative cache replays its
        stored SOA.  ``expire_after_min_ttl`` derives the entry expiry
        from the smallest TTL in the wire (the authoritative-server
        invalidation rule).  Both need a clock.
        """
        try:
            offsets = response_ttl_offsets(wire)
        except RenderRefused:
            self.stats.refusals += 1
            return False
        patches: tuple = ()
        if decrement_answers_until is not None:
            if self._clock is None:
                self.stats.refusals += 1
                return False
            ancount = struct.unpack_from(">H", wire, 6)[0]
            if ancount > len(offsets):
                # An answer section we cannot fully map (e.g. an OPT
                # miscounted into it) — refuse rather than mis-patch.
                self.stats.refusals += 1
                return False
            patches = tuple(
                (offset, decrement_answers_until) for offset in offsets[:ancount]
            )
        if expire_after_min_ttl and offsets:
            if self._clock is None:
                self.stats.refusals += 1
                return False
            min_ttl = min(
                struct.unpack_from(">I", wire, offset)[0] for offset in offsets
            )
            ttl_expiry = self._now() + min_ttl
            expires_at = ttl_expiry if expires_at is None else min(expires_at, ttl_expiry)
        self._entries[key] = _Entry(bytes(wire), expires_at, patches)
        self.stats.stores += 1
        if len(self._entries) > self.max_entries:
            # Drop the oldest-inserted tenth: cheap, deterministic.
            for stale_key in list(self._entries)[: self.max_entries // 10 or 1]:
                del self._entries[stale_key]
                self.stats.evictions += 1
        return True

    # -- bookkeeping ---------------------------------------------------------

    def flush(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)
