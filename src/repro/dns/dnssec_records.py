"""DNSSEC resource record types (RFC 4034, RFC 5155).

These are pure data carriers; signing, digesting, and validation logic
live in :mod:`repro.dnssec`.
"""

from __future__ import annotations

import base64
from dataclasses import dataclass
from typing import ClassVar, Iterable

from .exceptions import FormError
from .name import Name
from .rdata import Rdata, register_rdata
from .types import RdataType
from .wire import WireReader, WireWriter

# -- type bitmaps (RFC 4034 section 4.1.2) -----------------------------------


def encode_type_bitmap(types: Iterable[RdataType | int]) -> bytes:
    """Encode a set of RR types into NSEC/NSEC3 window-block bitmap form."""
    values = sorted({int(t) for t in types})
    out = bytearray()
    window = -1
    bitmap = bytearray()
    for value in values:
        win, bit = value >> 8, value & 0xFF
        if win != window:
            if window >= 0:
                out.append(window)
                out.append(len(bitmap))
                out += bitmap
            window = win
            bitmap = bytearray()
        byte_index = bit >> 3
        while len(bitmap) <= byte_index:
            bitmap.append(0)
        bitmap[byte_index] |= 0x80 >> (bit & 0x07)
    if window >= 0:
        out.append(window)
        out.append(len(bitmap))
        out += bitmap
    return bytes(out)


def decode_type_bitmap(data: bytes) -> tuple[int, ...]:
    """Decode window-block bitmap form back into a sorted tuple of types."""
    types: list[int] = []
    pos = 0
    while pos < len(data):
        if pos + 2 > len(data):
            raise FormError("truncated type bitmap window header")
        window = data[pos]
        length = data[pos + 1]
        pos += 2
        if length == 0 or length > 32 or pos + length > len(data):
            raise FormError("bad type bitmap window length")
        for i in range(length):
            byte = data[pos + i]
            for bit in range(8):
                if byte & (0x80 >> bit):
                    types.append((window << 8) | (i << 3) | bit)
        pos += length
    return tuple(types)


def _bitmap_to_text(types: tuple[int, ...]) -> str:
    names = []
    for value in types:
        try:
            names.append(RdataType(value).name)
        except ValueError:
            names.append(f"TYPE{value}")
    return " ".join(names)


# -- DNSKEY --------------------------------------------------------------------

ZONE_KEY_FLAG = 0x0100  # bit 7: this is a zone key (RFC 4034 section 2.1.1)
SEP_FLAG = 0x0001  # bit 15: secure entry point (KSK convention)
REVOKE_FLAG = 0x0080

DNSKEY_PROTOCOL = 3  # the only legal value


@register_rdata
@dataclass(frozen=True)
class DNSKEY(Rdata):
    """Public key record.  ``flags`` 256 = ZSK, 257 = KSK by convention."""

    rdtype: ClassVar[RdataType] = RdataType.DNSKEY
    flags: int = ZONE_KEY_FLAG
    protocol: int = DNSKEY_PROTOCOL
    algorithm: int = 0
    key: bytes = b""

    @property
    def is_zone_key(self) -> bool:
        return bool(self.flags & ZONE_KEY_FLAG)

    @property
    def is_sep(self) -> bool:
        return bool(self.flags & SEP_FLAG)

    @property
    def is_revoked(self) -> bool:
        return bool(self.flags & REVOKE_FLAG)

    def key_tag(self) -> int:
        """RFC 4034 Appendix B key tag over the rdata.

        Pure function of this immutable rdata, so the first computation
        is memoized on the instance — validators recompute it for every
        signature they check.
        """
        cached = getattr(self, "_key_tag", None)
        if cached is not None:
            return cached
        data = self.to_wire()
        total = 0
        for index, byte in enumerate(data):
            total += byte if index & 1 else byte << 8
        total += (total >> 16) & 0xFFFF
        tag = total & 0xFFFF
        object.__setattr__(self, "_key_tag", tag)
        return tag

    def write(self, writer: WireWriter, canonical: bool = False) -> None:
        writer.write_u16(self.flags)
        writer.write_u8(self.protocol)
        writer.write_u8(self.algorithm)
        writer.write_bytes(self.key)

    @classmethod
    def read(cls, reader: WireReader, rdlength: int) -> "DNSKEY":
        if rdlength < 4:
            raise FormError("DNSKEY rdata shorter than 4 octets")
        return cls(
            flags=reader.read_u16(),
            protocol=reader.read_u8(),
            algorithm=reader.read_u8(),
            key=reader.read_bytes(rdlength - 4),
        )

    def to_text(self) -> str:
        b64 = base64.b64encode(self.key).decode()
        return f"{self.flags} {self.protocol} {self.algorithm} {b64}"


# -- DS -------------------------------------------------------------------------


@register_rdata
@dataclass(frozen=True)
class DS(Rdata):
    """Delegation signer: a digest of the child's KSK, held by the parent."""

    rdtype: ClassVar[RdataType] = RdataType.DS
    key_tag: int = 0
    algorithm: int = 0
    digest_type: int = 0
    digest: bytes = b""

    def write(self, writer: WireWriter, canonical: bool = False) -> None:
        writer.write_u16(self.key_tag)
        writer.write_u8(self.algorithm)
        writer.write_u8(self.digest_type)
        writer.write_bytes(self.digest)

    @classmethod
    def read(cls, reader: WireReader, rdlength: int) -> "DS":
        if rdlength < 4:
            raise FormError("DS rdata shorter than 4 octets")
        return cls(
            key_tag=reader.read_u16(),
            algorithm=reader.read_u8(),
            digest_type=reader.read_u8(),
            digest=reader.read_bytes(rdlength - 4),
        )

    def to_text(self) -> str:
        return f"{self.key_tag} {self.algorithm} {self.digest_type} {self.digest.hex().upper()}"


# -- RRSIG -----------------------------------------------------------------------


@register_rdata
@dataclass(frozen=True)
class RRSIG(Rdata):
    """Signature over one RRset."""

    rdtype: ClassVar[RdataType] = RdataType.RRSIG
    type_covered: RdataType = RdataType.A
    algorithm: int = 0
    labels: int = 0
    original_ttl: int = 0
    expiration: int = 0  # seconds since epoch
    inception: int = 0
    key_tag: int = 0
    signer: Name = Name.root()
    signature: bytes = b""

    def write(self, writer: WireWriter, canonical: bool = False) -> None:
        writer.write_u16(int(self.type_covered))
        writer.write_u8(self.algorithm)
        writer.write_u8(self.labels)
        writer.write_u32(self.original_ttl)
        writer.write_u32(self.expiration)
        writer.write_u32(self.inception)
        writer.write_u16(self.key_tag)
        if canonical:
            writer.write_bytes(self.signer.canonical_wire())
        else:
            writer.write_name(self.signer, compress=False)
        writer.write_bytes(self.signature)

    def rdata_without_signature(self) -> bytes:
        """The RRSIG rdata prefix that is included in the signed data."""
        writer = WireWriter(enable_compression=False)
        writer.write_u16(int(self.type_covered))
        writer.write_u8(self.algorithm)
        writer.write_u8(self.labels)
        writer.write_u32(self.original_ttl)
        writer.write_u32(self.expiration)
        writer.write_u32(self.inception)
        writer.write_u16(self.key_tag)
        writer.write_bytes(self.signer.canonical_wire())
        return writer.getvalue()

    @classmethod
    def read(cls, reader: WireReader, rdlength: int) -> "RRSIG":
        end = reader.pos + rdlength
        type_covered = reader.read_u16()
        try:
            covered = RdataType(type_covered)
        except ValueError:
            covered = type_covered  # type: ignore[assignment]
        algorithm = reader.read_u8()
        labels = reader.read_u8()
        original_ttl = reader.read_u32()
        expiration = reader.read_u32()
        inception = reader.read_u32()
        key_tag = reader.read_u16()
        signer = reader.read_name()
        signature = reader.read_bytes(end - reader.pos)
        return cls(
            type_covered=covered,
            algorithm=algorithm,
            labels=labels,
            original_ttl=original_ttl,
            expiration=expiration,
            inception=inception,
            key_tag=key_tag,
            signer=signer,
            signature=signature,
        )

    def to_text(self) -> str:
        b64 = base64.b64encode(self.signature).decode()
        return (
            f"{RdataType(self.type_covered).name} {self.algorithm} {self.labels}"
            f" {self.original_ttl} {self.expiration} {self.inception}"
            f" {self.key_tag} {self.signer} {b64}"
        )


# -- NSEC / NSEC3 -----------------------------------------------------------------


@register_rdata
@dataclass(frozen=True)
class NSEC(Rdata):
    """Authenticated denial of existence (plain form)."""

    rdtype: ClassVar[RdataType] = RdataType.NSEC
    next_name: Name = Name.root()
    types: tuple[int, ...] = ()

    def write(self, writer: WireWriter, canonical: bool = False) -> None:
        if canonical:
            writer.write_bytes(self.next_name.canonical_wire())
        else:
            writer.write_name(self.next_name, compress=False)
        writer.write_bytes(encode_type_bitmap(self.types))

    @classmethod
    def read(cls, reader: WireReader, rdlength: int) -> "NSEC":
        end = reader.pos + rdlength
        next_name = reader.read_name()
        bitmap = reader.read_bytes(end - reader.pos)
        return cls(next_name=next_name, types=decode_type_bitmap(bitmap))

    def to_text(self) -> str:
        return f"{self.next_name} {_bitmap_to_text(self.types)}"


@register_rdata
@dataclass(frozen=True)
class NSEC3(Rdata):
    """Hashed authenticated denial of existence (RFC 5155).

    The owner name of an NSEC3 record is the base32hex hash; ``next_hash``
    here is the raw (binary) hash of the next name in the chain.
    """

    rdtype: ClassVar[RdataType] = RdataType.NSEC3
    hash_algorithm: int = 1  # 1 = SHA-1
    flags: int = 0  # bit 0 = opt-out
    iterations: int = 0
    salt: bytes = b""
    next_hash: bytes = b""
    types: tuple[int, ...] = ()

    @property
    def opt_out(self) -> bool:
        return bool(self.flags & 0x01)

    def write(self, writer: WireWriter, canonical: bool = False) -> None:
        writer.write_u8(self.hash_algorithm)
        writer.write_u8(self.flags)
        writer.write_u16(self.iterations)
        writer.write_u8(len(self.salt))
        writer.write_bytes(self.salt)
        writer.write_u8(len(self.next_hash))
        writer.write_bytes(self.next_hash)
        writer.write_bytes(encode_type_bitmap(self.types))

    @classmethod
    def read(cls, reader: WireReader, rdlength: int) -> "NSEC3":
        end = reader.pos + rdlength
        hash_algorithm = reader.read_u8()
        flags = reader.read_u8()
        iterations = reader.read_u16()
        salt = reader.read_bytes(reader.read_u8())
        next_hash = reader.read_bytes(reader.read_u8())
        bitmap = reader.read_bytes(end - reader.pos)
        return cls(
            hash_algorithm=hash_algorithm,
            flags=flags,
            iterations=iterations,
            salt=salt,
            next_hash=next_hash,
            types=decode_type_bitmap(bitmap),
        )

    def to_text(self) -> str:
        from ..dnssec.nsec3 import base32hex_encode

        salt = self.salt.hex().upper() if self.salt else "-"
        return (
            f"{self.hash_algorithm} {self.flags} {self.iterations} {salt}"
            f" {base32hex_encode(self.next_hash)} {_bitmap_to_text(self.types)}"
        )


@register_rdata
@dataclass(frozen=True)
class NSEC3PARAM(Rdata):
    """Advertises the NSEC3 parameters in use at the zone apex."""

    rdtype: ClassVar[RdataType] = RdataType.NSEC3PARAM
    hash_algorithm: int = 1
    flags: int = 0
    iterations: int = 0
    salt: bytes = b""

    def write(self, writer: WireWriter, canonical: bool = False) -> None:
        writer.write_u8(self.hash_algorithm)
        writer.write_u8(self.flags)
        writer.write_u16(self.iterations)
        writer.write_u8(len(self.salt))
        writer.write_bytes(self.salt)

    @classmethod
    def read(cls, reader: WireReader, rdlength: int) -> "NSEC3PARAM":
        hash_algorithm = reader.read_u8()
        flags = reader.read_u8()
        iterations = reader.read_u16()
        salt = reader.read_bytes(reader.read_u8())
        return cls(
            hash_algorithm=hash_algorithm,
            flags=flags,
            iterations=iterations,
            salt=salt,
        )

    def to_text(self) -> str:
        salt = self.salt.hex().upper() if self.salt else "-"
        return f"{self.hash_algorithm} {self.flags} {self.iterations} {salt}"
