"""The paper's published Table 4, transcribed for comparison.

Keys are subdomain labels; values map profile short-names to the tuple
of EDE INFO-CODEs that system returned (empty tuple = "None" in the
table).  ``experiments.table4`` compares the live matrix produced by
our engine against this transcription cell by cell.
"""

from __future__ import annotations

from ..net.addresses import TESTBED_GLUE

PROFILE_ORDER = (
    "bind",
    "unbound",
    "powerdns",
    "knot",
    "cloudflare",
    "quad9",
    "opendns",
)


def _row(
    unbound: tuple[int, ...] = (),
    powerdns: tuple[int, ...] = (),
    knot: tuple[int, ...] = (),
    cloudflare: tuple[int, ...] = (),
    quad9: tuple[int, ...] = (),
    opendns: tuple[int, ...] = (),
) -> dict[str, tuple[int, ...]]:
    return {
        "bind": (),
        "unbound": unbound,
        "powerdns": powerdns,
        "knot": knot,
        "cloudflare": cloudflare,
        "quad9": quad9,
        "opendns": opendns,
    }


EXPECTED_TABLE4: dict[str, dict[str, tuple[int, ...]]] = {
    # 1-2
    "valid": _row(),
    "no-ds": _row(),
    # 3-8: DS
    "ds-bad-tag": _row((9,), (9,), (6,), (9,), (9,), (6,)),
    "ds-bad-key-algo": _row((9,), (9,), (6,), (9,), (9,), (6,)),
    "ds-unassigned-key-algo": _row((), (), (0,), (9,), (), (6,)),
    "ds-reserved-key-algo": _row((), (), (0,), (1,), (), (6,)),
    "ds-unassigned-digest-algo": _row((), (), (0,), (2,), (), ()),
    "ds-bogus-digest-value": _row((9,), (9,), (6,), (6,), (9,), (6,)),
    # 9-16: RRSIG
    "rrsig-exp-all": _row((7,), (7,), (7,), (7,), (7,), (6,)),
    "rrsig-exp-a": _row((6,), (7,), (), (7,), (6,), (7,)),
    "rrsig-not-yet-all": _row((9,), (8,), (8,), (8,), (9,), (6,)),
    "rrsig-not-yet-a": _row((6,), (8,), (), (8,), (8,), (8,)),
    "rrsig-no-all": _row((10,), (10,), (10,), (10,), (9,), (6,)),
    "rrsig-no-a": _row((10,), (10,), (10,), (10,), (10,), ()),
    "rrsig-exp-before-all": _row((9,), (7,), (7,), (10,), (9,), (6,)),
    "rrsig-exp-before-a": _row((6,), (7,), (), (7,), (7,), (7,)),
    # 17-25: NSEC3
    "nsec3-missing": _row((12,), (), (12,), (6,), (), (12,)),
    "bad-nsec3-hash": _row((6,), (), (6,), (6,), (6,), (12,)),
    "bad-nsec3-next": _row((6,), (), (6,), (6,), (6,), (6,)),
    "bad-nsec3-rrsig": _row((6,), (), (6,), (6,), (), (6,)),
    "nsec3-rrsig-missing": _row((12,), (), (10,), (6,), (9,), (12,)),
    "nsec3param-missing": _row((10,), (10,), (10,), (10,), (9,), (6,)),
    "bad-nsec3param-salt": _row((12,), (), (12,), (6,), (9,), (12,)),
    "no-nsec3param-nsec3": _row((10,), (10,), (10,), (10,), (10,), (6,)),
    "nsec3-iter-200": _row(),
    # 26-39: DNSKEY
    "no-zsk": _row((9,), (6,), (6,), (6,), (9,), (6,)),
    "bad-zsk": _row((9,), (6,), (6,), (6,), (6,), (6,)),
    "no-ksk": _row((9,), (9,), (6,), (9,), (9,), (6,)),
    "no-rrsig-ksk": _row((10,), (9,), (6,), (10,), (9,), (6,)),
    "bad-rrsig-ksk": _row((9,), (6,), (6,), (6,), (6,), (6,)),
    "bad-ksk": _row((9,), (9,), (6,), (9,), (9,), (6,)),
    "no-rrsig-dnskey": _row((10,), (10,), (10,), (10,), (9,), (6,)),
    "bad-rrsig-dnskey": _row((9,), (6,), (6,), (6,), (9,), (6,)),
    "no-dnskey-256": _row((9,), (6,), (6,), (6,), (9,), (6,)),
    "no-dnskey-257": _row((9,), (9,), (6,), (9,), (9,), (6,)),
    "no-dnskey-256-257": _row((9,), (10,), (10,), (9,), (10,), (6,)),
    "bad-zsk-algo": _row((9,), (6,), (6,), (6,), (6,), (6,)),
    "unassigned-zsk-algo": _row((9,), (6,), (6,), (6,), (9,), (6,)),
    "reserved-zsk-algo": _row((9,), (6,), (6,), (6,), (6,), (6,)),
    # 40-57: bad glue — Cloudflare alone flags the lame delegation
    **{label: _row(cloudflare=(22,)) for label in TESTBED_GLUE},
    # 58-63: other
    "unsigned": _row(),
    "ed448": _row(cloudflare=(1,)),
    "rsamd5": _row(knot=(0,), cloudflare=(1,)),
    "dsa": _row(knot=(0,), cloudflare=(1,)),
    "allow-query-none": _row(cloudflare=(9, 22, 23), opendns=(18,)),
    "allow-query-localhost": _row(cloudflare=(9, 22, 23), opendns=(18,)),
}

#: The four cases all seven systems agreed on (paper section 3.3).
CONSISTENT_CASES = ("valid", "no-ds", "nsec3-iter-200", "unsigned")
