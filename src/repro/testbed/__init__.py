"""The 63-domain testbed: case specs, deployment, runner, published results."""

from .expected import CONSISTENT_CASES, EXPECTED_TABLE4, PROFILE_ORDER
from .infra import DeployedCase, Testbed, build_testbed, child_server_address
from .runner import CellResult, MatrixResult, make_resolvers, run_matrix
from .subdomains import ALL_CASES, CASES_BY_LABEL, GROUP_NAMES, TestbedCase, cases_in_group

__all__ = [
    "ALL_CASES",
    "CASES_BY_LABEL",
    "CONSISTENT_CASES",
    "CellResult",
    "DeployedCase",
    "EXPECTED_TABLE4",
    "GROUP_NAMES",
    "MatrixResult",
    "PROFILE_ORDER",
    "Testbed",
    "TestbedCase",
    "build_testbed",
    "cases_in_group",
    "child_server_address",
    "make_resolvers",
    "run_matrix",
]
