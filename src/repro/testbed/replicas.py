"""Replicated authority topology: anycast-style replicas per tier.

Real root, TLD, and SLD operations serve each zone from many replica
addresses (the root alone has 13 letters and ~1700 anycast instances).
A resolver therefore has *choices* at every delegation step, and its
SRTT server book, lameness tracking, and per-server circuit breakers
only matter when those choices exist.  This module gives the testbed
that shape: each tier keeps ONE authoritative server instance (one
zone, one signing key set) exposed at several fabric addresses, each
address behind its own latency-class link.

Replica links carry *latency only* — never loss or jitter.  Loss and
jitter draw from the fabric RNG, which would make replica selection
perturb unrelated runs; a pure latency spread keeps every topology
fully deterministic while still giving the SRTT book a real gradient
to learn (metro replicas win, intercontinental ones lose).

Each address is wrapped in a :class:`ReplicaEndpoint` that counts the
datagrams it handled, so tests can assert *exact* per-replica query
distribution — e.g. that a blackholed replica received zero queries
while its siblings absorbed the load
(``tests/test_replicas.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..net.fabric import LinkProperties, NetworkFabric

#: Name -> one-way link latency in virtual seconds.  The spread matches
#: the classes a resolver actually observes: same-metro anycast site,
#: same-region unicast, cross-continent, and trans-oceanic paths.
LATENCY_CLASSES: dict[str, float] = {
    "metro": 0.002,
    "regional": 0.012,
    "continental": 0.035,
    "intercontinental": 0.080,
}

#: Deterministic class per replica index: the first replica of a tier is
#: always the close one, later replicas progressively farther away.
CLASS_ROTATION: tuple[str, ...] = (
    "metro",
    "regional",
    "continental",
    "intercontinental",
)

#: Public replica address pools per tier.  Index 0 of each pool is the
#: single-server address the unreplicated testbed has always used, so a
#: one-replica topology is address-compatible with the flat build.
ROOT_REPLICA_POOL: tuple[str, ...] = (
    "198.41.0.4",  # a.root-servers.net (the seed testbed's only root)
    "199.9.14.201",  # b.root-servers.net
    "192.33.4.12",  # c.root-servers.net
    "199.7.91.13",  # d.root-servers.net
)
COM_REPLICA_POOL: tuple[str, ...] = (
    "192.5.6.30",  # a.gtld-servers.net
    "192.33.14.30",  # b.gtld-servers.net
    "192.26.92.30",  # c.gtld-servers.net
)
PARENT_REPLICA_POOL: tuple[str, ...] = (
    "185.199.0.53",
    "185.199.1.53",
    "185.199.2.53",
)


@dataclass(frozen=True)
class ReplicaTopology:
    """How many replica addresses each authority tier exposes."""

    root: int = 3
    tld: int = 2
    sld: int = 2

    def __post_init__(self) -> None:
        for name, count, pool in (
            ("root", self.root, ROOT_REPLICA_POOL),
            ("tld", self.tld, COM_REPLICA_POOL),
            ("sld", self.sld, PARENT_REPLICA_POOL),
        ):
            if not 1 <= count <= len(pool):
                raise ValueError(
                    f"{name} replicas must be in 1..{len(pool)}, got {count}"
                )


def latency_class_for(index: int) -> str:
    """Deterministic latency class of the ``index``-th replica."""
    return CLASS_ROTATION[index % len(CLASS_ROTATION)]


class ReplicaEndpoint:
    """One public address of a replicated authority, with a query counter.

    All replicas of a tier share the underlying
    :class:`~repro.server.authoritative.AuthoritativeServer` (same zone,
    same keys — anycast replicas serve identical data); the wrapper only
    attributes traffic to the address that received it.
    """

    def __init__(self, server, address: str, latency_class: str):
        self.server = server
        self.address = address
        self.latency_class = latency_class
        self.queries = 0

    def handle_datagram(self, wire: bytes, source: str) -> bytes | None:
        self.queries += 1
        return self.server.handle_datagram(wire, source)


@dataclass
class ReplicaSet:
    """The deployed replicas of one authority tier."""

    tier: str
    addresses: tuple[str, ...]
    endpoints: dict[str, ReplicaEndpoint] = field(default_factory=dict)

    def query_counts(self) -> dict[str, int]:
        """Exact datagram count per replica address."""
        return {
            address: self.endpoints[address].queries
            for address in self.addresses
        }


def register_replicas(
    fabric: NetworkFabric,
    tier: str,
    addresses: list[str] | tuple[str, ...],
    server,
) -> ReplicaSet:
    """Expose ``server`` at every address, each behind its class link."""
    replica_set = ReplicaSet(tier=tier, addresses=tuple(addresses))
    for index, address in enumerate(addresses):
        latency_class = latency_class_for(index)
        endpoint = ReplicaEndpoint(server, address, latency_class)
        fabric.register(
            address,
            endpoint,
            link=LinkProperties(latency=LATENCY_CLASSES[latency_class]),
        )
        replica_set.endpoints[address] = endpoint
    return replica_set
