"""The 63 testbed subdomains (paper Tables 2 and 3).

Each :class:`TestbedCase` names one subdomain of
``extended-dns-errors.com``, the misconfiguration applied to it, and the
query plan that exercises it (most cases are probed with an A query for
the subdomain apex; the NSEC3 cases query a nonexistent child so the
denial-of-existence path is forced, which is how broken NSEC3 chains
become observable at all).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..dnssec.algorithms import (
    Algorithm,
    RESERVED_ALGORITHM,
    UNASSIGNED_ALGORITHM,
    UNASSIGNED_DIGEST,
)
from ..net.addresses import TESTBED_GLUE
from ..zones.mutations import SigScope, Window, ZoneMutation

#: Group descriptions from Table 2.
GROUP_NAMES = {
    1: "Control subdomain",
    2: "DS misconfigurations",
    3: "RRSIG misconfigurations",
    4: "NSEC3 misconfigurations",
    5: "DNSKEY misconfigurations",
    6: "Invalid AAAA glue records",
    7: "Invalid A glue records",
    8: "Other",
}


@dataclass(frozen=True)
class TestbedCase:
    """One subdomain from Table 3."""

    label: str
    group: int
    description: str
    mutation: ZoneMutation = field(default_factory=ZoneMutation)
    #: Query a nonexistent name below the subdomain instead of its apex.
    query_nonexistent: bool = False

    @property
    def subdomain(self) -> str:
        return f"{self.label}.extended-dns-errors.com."


def _case(
    label: str,
    group: int,
    description: str,
    query_nonexistent: bool = False,
    **mutation_fields: object,
) -> TestbedCase:
    return TestbedCase(
        label=label,
        group=group,
        description=description,
        mutation=ZoneMutation(**mutation_fields),  # type: ignore[arg-type]
        query_nonexistent=query_nonexistent,
    )


ALL_CASES: tuple[TestbedCase, ...] = (
    # -- group 1: control -------------------------------------------------------
    _case("valid", 1, "The correctly configured control domain"),
    # -- group 2: DS -------------------------------------------------------------
    _case("no-ds", 2, "Correctly signed but no DS published at the parent",
          publish_ds=False),
    _case("ds-bad-tag", 2, "DS key tag does not match the KSK DNSKEY ID",
          ds_tag_offset=1),
    _case("ds-bad-key-algo", 2, "DS algorithm does not match the KSK algorithm",
          ds_algorithm_override=int(Algorithm.RSASHA1)),
    _case("ds-unassigned-key-algo", 2, "DS algorithm value is unassigned (100)",
          ds_algorithm_override=UNASSIGNED_ALGORITHM),
    _case("ds-reserved-key-algo", 2, "DS algorithm value is reserved (200)",
          ds_algorithm_override=RESERVED_ALGORITHM),
    _case("ds-unassigned-digest-algo", 2, "DS digest algorithm is unassigned (100)",
          ds_digest_type_override=UNASSIGNED_DIGEST),
    _case("ds-bogus-digest-value", 2, "DS digest value does not match the KSK",
          ds_corrupt_digest=True),
    # -- group 3: RRSIG -------------------------------------------------------------
    _case("rrsig-exp-all", 3, "All the RRSIG records are expired",
          window_all=Window.EXPIRED),
    _case("rrsig-exp-a", 3, "The RRSIG over A RRset is expired",
          window_a=Window.EXPIRED),
    _case("rrsig-not-yet-all", 3, "All the RRSIG records are not yet valid",
          window_all=Window.NOT_YET_VALID),
    _case("rrsig-not-yet-a", 3, "The RRSIG over A RRset is not yet valid",
          window_a=Window.NOT_YET_VALID),
    _case("rrsig-no-all", 3, "All the RRSIGs were removed from the zone file",
          drop_sigs=SigScope.ALL),
    _case("rrsig-exp-before-all", 3, "All the RRSIGs expired before inception",
          window_all=Window.INVERTED),
    _case("rrsig-no-a", 3, "The RRSIG over A RRset was removed",
          drop_sigs=SigScope.LEAF_A),
    _case("rrsig-exp-before-a", 3, "The RRSIG over A RRset expired before inception",
          window_a=Window.INVERTED),
    # -- group 4: NSEC3 -----------------------------------------------------------------
    _case("nsec3-missing", 4, "All the NSEC3 records were removed",
          query_nonexistent=True, drop_nsec3=True),
    _case("bad-nsec3-hash", 4, "Hashed owner names modified in all NSEC3 records",
          query_nonexistent=True, corrupt_nsec3_owner=True),
    _case("bad-nsec3-next", 4, "Next hashed owner names modified in all NSEC3 records",
          query_nonexistent=True, corrupt_nsec3_next=True),
    _case("bad-nsec3-rrsig", 4, "RRSIGs over NSEC3 RRsets are bogus",
          query_nonexistent=True, corrupt_sigs=SigScope.NSEC3_SIGS),
    _case("nsec3-rrsig-missing", 4, "RRSIGs over NSEC3 RRsets were removed",
          query_nonexistent=True, drop_sigs=SigScope.NSEC3_SIGS),
    _case("nsec3-iter-200", 4, "NSEC3 iteration count is set to 200",
          nsec3_iterations=200),
    _case("nsec3param-missing", 4, "NSEC3PARAM resource record was removed",
          query_nonexistent=True, drop_nsec3param=True),
    _case("bad-nsec3param-salt", 4, "The salt value of NSEC3PARAM is wrong",
          query_nonexistent=True, nsec3param_salt_mismatch=True),
    _case("no-nsec3param-nsec3", 4, "NSEC3 and NSEC3PARAM records were removed",
          query_nonexistent=True, drop_nsec3=True, drop_nsec3param=True),
    # -- group 5: DNSKEY --------------------------------------------------------------------
    _case("no-zsk", 5, "The ZSK DNSKEY was removed from the zone file",
          drop_zsk=True),
    _case("bad-zsk", 5, "The ZSK DNSKEY resource record is wrong",
          corrupt_zsk=True),
    _case("no-ksk", 5, "The KSK DNSKEY was removed from the zone file",
          drop_ksk=True),
    _case("no-rrsig-ksk", 5, "The RRSIG over KSK DNSKEY was removed",
          drop_sigs=SigScope.KSK_SIG),
    _case("bad-rrsig-ksk", 5, "The RRSIG over KSK DNSKEY is wrong",
          corrupt_sigs=SigScope.KSK_SIG),
    _case("bad-ksk", 5, "The KSK DNSKEY is wrong",
          corrupt_ksk=True),
    _case("no-rrsig-dnskey", 5, "All RRSIGs over DNSKEY RRsets were removed",
          drop_sigs=SigScope.DNSKEY_SIGS),
    _case("bad-rrsig-dnskey", 5, "All RRSIGs over DNSKEY RRsets are wrong",
          corrupt_sigs=SigScope.DNSKEY_SIGS),
    _case("no-dnskey-256", 5, "The Zone Key Bit is set to 0 for the ZSK",
          clear_zone_bit_zsk=True),
    _case("no-dnskey-257", 5, "The Zone Key Bit is set to 0 for the KSK",
          clear_zone_bit_ksk=True),
    _case("no-dnskey-256-257", 5, "The Zone Key Bit is 0 for both KSK and ZSK",
          clear_zone_bit_zsk=True, clear_zone_bit_ksk=True),
    _case("bad-zsk-algo", 5, "The ZSK DNSKEY algorithm number is wrong",
          zsk_algorithm_override=int(Algorithm.RSASHA1_NSEC3_SHA1)),
    _case("unassigned-zsk-algo", 5, "The ZSK DNSKEY algorithm is unassigned (100)",
          zsk_algorithm_override=UNASSIGNED_ALGORITHM),
    _case("reserved-zsk-algo", 5, "The ZSK DNSKEY algorithm is reserved (200)",
          zsk_algorithm_override=RESERVED_ALGORITHM),
    # -- groups 6 and 7: invalid glue (all unsigned; the breakage is transport) ------------
    *(
        _case(label, 6 if label.startswith(("v6", "v4-hex")) else 7,
              f"The glue record at the parent zone is {address}",
              signed=False, glue_override=address)
        for label, address in TESTBED_GLUE.items()
    ),
    # -- group 8: other ------------------------------------------------------------------------
    _case("unsigned", 8, "The domain name is not signed with DNSSEC",
          signed=False),
    _case("ed448", 8, "The zone is signed with the ED448 algorithm",
          algorithm=int(Algorithm.ED448)),
    _case("rsamd5", 8, "The zone is signed with the RSAMD5 algorithm",
          algorithm=int(Algorithm.RSAMD5)),
    _case("dsa", 8, "The zone is signed with the DSA algorithm",
          algorithm=int(Algorithm.DSA)),
    _case("allow-query-none", 8, "Nameserver does not accept queries",
          acl="none"),
    _case("allow-query-localhost", 8, "Nameserver only accepts localhost queries",
          acl="localhost"),
)

CASES_BY_LABEL = {case.label: case for case in ALL_CASES}


def cases_in_group(group: int) -> list[TestbedCase]:
    return [case for case in ALL_CASES if case.group == group]


assert len(ALL_CASES) == 63, f"expected 63 testbed cases, found {len(ALL_CASES)}"
