"""Driving the testbed: query every case through every vendor profile.

Produces the live 63×7 EDE matrix (the reproduction of Table 4) and the
Section 3.3 consistency statistics derived from it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cluster import ResolverCluster
from ..dns.rcode import Rcode
from ..dns.types import RdataType
from ..obs import Observability
from ..resolver.iterative import EngineConfig
from ..resolver.profiles import ALL_PROFILES, ResolverProfile
from ..resolver.recursive import RecursiveResolver
from .expected import EXPECTED_TABLE4, PROFILE_ORDER
from .infra import Testbed, build_testbed
from .subdomains import ALL_CASES


@dataclass
class CellResult:
    """One (case, profile) measurement."""

    label: str
    profile: str
    rcode: int = Rcode.NOERROR
    ede_codes: tuple[int, ...] = ()
    extra_texts: tuple[str, ...] = ()


@dataclass
class MatrixResult:
    """The full live matrix plus derived statistics."""

    cells: dict[tuple[str, str], CellResult] = field(default_factory=dict)
    profile_names: tuple[str, ...] = PROFILE_ORDER

    def codes(self, label: str, profile: str) -> tuple[int, ...]:
        return self.cells[(label, profile)].ede_codes

    def row(self, label: str) -> dict[str, tuple[int, ...]]:
        return {name: self.codes(label, name) for name in self.profile_names}

    # -- section 3.3 statistics -------------------------------------------------

    def consistent_cases(self) -> list[str]:
        """Cases for which all profiles returned the same codes."""
        out = []
        for case in ALL_CASES:
            row = self.row(case.label)
            if len(set(row.values())) == 1:
                out.append(case.label)
        return out

    def inconsistency_ratio(self) -> float:
        return 1.0 - len(self.consistent_cases()) / len(ALL_CASES)

    def unique_codes(self) -> tuple[int, ...]:
        codes: set[int] = set()
        for cell in self.cells.values():
            codes.update(cell.ede_codes)
        return tuple(sorted(codes))

    def code_frequencies(self) -> dict[int, int]:
        """How many cells returned each INFO-CODE."""
        freq: dict[int, int] = {}
        for cell in self.cells.values():
            for code in cell.ede_codes:
                freq[code] = freq.get(code, 0) + 1
        return dict(sorted(freq.items(), key=lambda kv: -kv[1]))

    # -- comparison with the published table ---------------------------------------

    def diff_against_paper(self) -> list[tuple[str, str, tuple[int, ...], tuple[int, ...]]]:
        """(label, profile, measured, published) for every mismatching cell."""
        mismatches = []
        for case in ALL_CASES:
            expected_row = EXPECTED_TABLE4[case.label]
            for profile in self.profile_names:
                measured = self.codes(case.label, profile)
                published = tuple(sorted(expected_row[profile]))
                if tuple(sorted(measured)) != published:
                    mismatches.append((case.label, profile, measured, published))
        return mismatches

    def agreement_with_paper(self) -> float:
        total = len(ALL_CASES) * len(self.profile_names)
        return 1.0 - len(self.diff_against_paper()) / total


def make_resolvers(
    testbed: Testbed,
    profiles: tuple[ResolverProfile, ...] = ALL_PROFILES,
    obs: "Observability | None" = None,
    shards: int = 1,
    engine_config: "EngineConfig | None" = None,
) -> dict[str, "RecursiveResolver | ResolverCluster"]:
    """One resolver per vendor profile, attached to the testbed fabric.

    ``shards`` > 1 swaps each single resolver for a
    :class:`~repro.cluster.ResolverCluster` of that many shards — the
    shard-count differential suite runs the whole Table 4 matrix this
    way and pins it byte-identical to the flat resolvers.
    """
    if shards > 1:
        return {
            profile.policy.name: ResolverCluster(
                fabric=testbed.fabric,
                profile=profile,
                root_hints=testbed.root_hints,
                trust_anchors=testbed.trust_anchors,
                shards=shards,
                engine_config=engine_config,
                obs=obs,
            )
            for profile in profiles
        }
    return {
        profile.policy.name: RecursiveResolver(
            fabric=testbed.fabric,
            profile=profile,
            root_hints=testbed.root_hints,
            trust_anchors=testbed.trust_anchors,
            engine_config=engine_config,
            obs=obs,
        )
        for profile in profiles
    }


def enable_render_caches(testbed: Testbed) -> int:
    """Attach a rendered-response wire cache to every authoritative
    endpoint on the testbed fabric; returns how many were fitted.

    Behaviour-quirk servers (REFUSED-for-everything, dropped OPT, …) are
    standalone endpoint classes without a ``render_cache`` slot and keep
    the plain byte path — only :class:`AuthoritativeServer` instances
    (and subclasses) are cached.  Idempotent: already-fitted servers are
    skipped.
    """
    from ..dns.render import RenderedWireCache
    from ..server.authoritative import AuthoritativeServer

    fitted = 0
    for endpoint in testbed.fabric.registered_endpoints():
        if (
            isinstance(endpoint, AuthoritativeServer)
            and endpoint.render_cache is None
        ):
            endpoint.render_cache = RenderedWireCache(clock=testbed.fabric.clock)
            fitted += 1
    return fitted


def run_matrix(
    testbed: Testbed | None = None,
    profiles: tuple[ResolverProfile, ...] = ALL_PROFILES,
    obs: "Observability | None" = None,
    shards: int = 1,
    engine_config: "EngineConfig | None" = None,
    render_cache: bool = False,
) -> MatrixResult:
    """Query all 63 cases through all profiles; the paper's core experiment.

    ``render_cache`` fits every authoritative server on the testbed
    fabric with a rendered-response wire cache before driving the
    matrix; pair it with an ``engine_config`` enabling
    ``render_query_cache``/``paved_fabric`` to run the full zero-copy
    bundle — the differential suite pins the resulting 63×7 matrix
    byte-identical to the plain byte path.
    """
    testbed = testbed or build_testbed()
    if render_cache:
        enable_render_caches(testbed)
    resolvers = make_resolvers(
        testbed, profiles, obs=obs, shards=shards, engine_config=engine_config
    )
    result = MatrixResult(profile_names=tuple(p.policy.name for p in profiles))
    for deployed in testbed.cases.values():
        for name, resolver in resolvers.items():
            resolver.flush_caches()
            response = resolver.resolve(
                deployed.query_name, RdataType.A, want_dnssec=False
            )
            result.cells[(deployed.case.label, name)] = CellResult(
                label=deployed.case.label,
                profile=name,
                rcode=response.rcode,
                ede_codes=response.ede_codes,
                extra_texts=tuple(
                    option.extra_text
                    for option in response.extended_errors
                    if option.extra_text
                ),
            )
    return result
