"""Deploying the testbed: root, ``com``, ``extended-dns-errors.com``,
and its 63 misconfigured children, onto a fabric.

The layout mirrors the paper's infrastructure: a correctly configured
and signed parent (``extended-dns-errors.com``), one child zone per
case — each on its own nameserver address — and delegations whose DS
and glue records carry the per-case mutations.  Vendor resolvers are
attached to the same fabric afterwards (see :mod:`repro.testbed.runner`).
"""

from __future__ import annotations

import dataclasses
import ipaddress
from dataclasses import dataclass, field

from ..dns.dnssec_records import DS
from ..dns.name import Name
from ..dns.rdata import A, AAAA, NS
from ..dns.rrset import RRset
from ..dns.types import RdataType
from ..dnssec.ds import make_ds
from ..net.fabric import NetworkFabric
from ..server.acl import Acl
from ..server.authoritative import AuthoritativeServer
from ..zones.builder import BuiltZone, ZoneBuilder
from ..zones.mutations import ZoneMutation
from .replicas import (
    COM_REPLICA_POOL,
    PARENT_REPLICA_POOL,
    ROOT_REPLICA_POOL,
    ReplicaSet,
    ReplicaTopology,
    register_replicas,
)
from .subdomains import ALL_CASES, TestbedCase

ROOT_SERVER = "198.41.0.4"
COM_SERVER = "192.5.6.30"
PARENT_SERVER = "185.199.0.53"

PARENT_NAME = Name.from_text("extended-dns-errors.com.")
COM_NAME = Name.from_text("com.")
ROOT_NAME = Name.root()


def child_server_address(index: int) -> str:
    """Deterministic public address for the i-th child nameserver."""
    return f"185.199.{1 + index // 200}.{1 + index % 200}"


@dataclass
class DeployedCase:
    case: TestbedCase
    zone_name: Name
    server_address: str
    built: BuiltZone | None  # None when nothing is hosted (bad glue)
    query_name: Name = field(init=False)

    def __post_init__(self) -> None:
        if self.case.query_nonexistent:
            self.query_name = Name.from_text("nx", origin=self.zone_name)
        else:
            self.query_name = self.zone_name


@dataclass
class Testbed:
    """Everything the runner needs to drive the measurements."""

    fabric: NetworkFabric
    root_hints: list[str]
    trust_anchors: list[DS]
    cases: dict[str, DeployedCase]
    parent_built: BuiltZone
    root_built: BuiltZone
    com_built: BuiltZone
    #: tier name ("root" | "com" | "parent") -> deployed replica set;
    #: empty for the classic single-server-per-tier build.
    replicas: dict[str, ReplicaSet] = field(default_factory=dict)


def _apex_records(builder: ZoneBuilder, ns_addresses: str | list[str]) -> None:
    """Apex NS/A set; one ``ns{i}`` host per replica address."""
    if isinstance(ns_addresses, str):
        ns_addresses = [ns_addresses]
    origin = builder.origin
    ns_names = [
        Name.from_text(f"ns{i}", origin=origin)
        for i in range(1, len(ns_addresses) + 1)
    ]
    for ns_name in ns_names:
        builder.add(RRset.of(origin, RdataType.NS, NS(target=ns_name), ttl=300))
    builder.add(RRset.of(origin, RdataType.A, A(address="93.184.216.34"), ttl=300))
    for ns_name, address in zip(ns_names, ns_addresses):
        builder.add(RRset.of(ns_name, RdataType.A, A(address=address), ttl=300))
    builder.ensure_soa()


def _glue_rrset(name: Name, address: str) -> RRset:
    parsed = ipaddress.ip_address(address)
    if parsed.version == 6:
        return RRset.of(name, RdataType.AAAA, AAAA(address=address), ttl=300)
    return RRset.of(name, RdataType.A, A(address=address), ttl=300)


def build_testbed(
    fabric: NetworkFabric | None = None,
    cases: tuple[TestbedCase, ...] = ALL_CASES,
    now: int | None = None,
    key_bits: int = 1024,
    topology: ReplicaTopology | None = None,
) -> Testbed:
    """Build and wire up the whole testbed; returns the deployment handle.

    ``topology`` replicates the root/``com``/parent tiers: each tier's
    single authoritative server is exposed at several addresses behind
    per-class latency links (see :mod:`repro.testbed.replicas`), the
    zones publish one ``ns{i}``/glue pair per replica, and
    ``root_hints`` lists every root replica.  ``None`` (the default)
    builds the classic flat testbed, byte-for-byte unchanged.
    """
    fabric = fabric or NetworkFabric()
    now = int(fabric.clock.now()) if now is None else now

    if topology is None:
        root_addrs = [ROOT_SERVER]
        com_addrs = [COM_SERVER]
        parent_addrs = [PARENT_SERVER]
    else:
        root_addrs = list(ROOT_REPLICA_POOL[: topology.root])
        com_addrs = list(COM_REPLICA_POOL[: topology.tld])
        parent_addrs = list(PARENT_REPLICA_POOL[: topology.sld])

    deployed: dict[str, DeployedCase] = {}
    child_delegations: list[tuple[Name, str, list[DS], TestbedCase]] = []

    for index, case in enumerate(cases):
        zone_name = Name.from_text(case.label, origin=PARENT_NAME)
        address = child_server_address(index)
        mutation = case.mutation
        built: BuiltZone | None = None

        if mutation.glue_override is None:
            builder = ZoneBuilder(
                zone_name,
                now=now,
                mutation=dataclasses.replace(mutation, key_bits=key_bits),
                key_seed=1000 + index,
            )
            _apex_records(builder, address)
            built = builder.build()
            server = AuthoritativeServer(
                name=f"ns1.{zone_name}", acl=Acl.from_keyword(mutation.acl)
            )
            server.add_zone(built.zone)
            fabric.register(address, server)
            ds_rdatas = built.ds_rdatas
            glue_address = address
        else:
            # Bad-glue cases: the delegation points into a special-purpose
            # prefix, so no server exists to host the child zone at all.
            ds_rdatas = []
            glue_address = mutation.glue_override

        child_delegations.append((zone_name, glue_address, ds_rdatas, case))
        deployed[case.label] = DeployedCase(
            case=case, zone_name=zone_name, server_address=address, built=built
        )

    replicas: dict[str, ReplicaSet] = {}

    # -- parent zone -----------------------------------------------------------
    parent_builder = ZoneBuilder(
        PARENT_NAME, now=now, mutation=ZoneMutation(key_bits=key_bits), key_seed=3
    )
    _apex_records(parent_builder, parent_addrs)
    for zone_name, glue_address, ds_rdatas, _case in child_delegations:
        ns_name = Name.from_text("ns1", origin=zone_name)
        parent_builder.add(
            RRset.of(zone_name, RdataType.NS, NS(target=ns_name), ttl=300)
        )
        parent_builder.add(_glue_rrset(ns_name, glue_address))
        for ds in ds_rdatas:
            parent_builder.add(RRset.of(zone_name, RdataType.DS, ds, ttl=300))
    parent_built = parent_builder.build()
    parent_server = AuthoritativeServer(name="ns1.extended-dns-errors.com")
    parent_server.add_zone(parent_built.zone)
    if topology is None:
        fabric.register(PARENT_SERVER, parent_server)
    else:
        replicas["parent"] = register_replicas(
            fabric, "parent", parent_addrs, parent_server
        )

    # -- com --------------------------------------------------------------------
    com_builder = ZoneBuilder(
        COM_NAME, now=now, mutation=ZoneMutation(key_bits=key_bits), key_seed=2
    )
    _apex_records(com_builder, com_addrs)
    for index, address in enumerate(parent_addrs, start=1):
        ns_name = Name.from_text(f"ns{index}", origin=PARENT_NAME)
        com_builder.add(
            RRset.of(PARENT_NAME, RdataType.NS, NS(target=ns_name), ttl=300)
        )
        com_builder.add(_glue_rrset(ns_name, address))
    for ds in parent_built.ds_rdatas:
        com_builder.add(RRset.of(PARENT_NAME, RdataType.DS, ds, ttl=300))
    com_built = com_builder.build()
    com_server = AuthoritativeServer(name="ns.com")
    com_server.add_zone(com_built.zone)
    if topology is None:
        fabric.register(COM_SERVER, com_server)
    else:
        replicas["com"] = register_replicas(fabric, "com", com_addrs, com_server)

    # -- root ---------------------------------------------------------------------
    root_builder = ZoneBuilder(
        ROOT_NAME, now=now, mutation=ZoneMutation(key_bits=key_bits), key_seed=1
    )
    _apex_records(root_builder, root_addrs)
    if topology is None:
        # The flat build's historical delegation: a single "ns.com" host
        # (kept verbatim so the unreplicated zone stays byte-identical).
        com_ns = Name.from_text("ns.com.")
        root_builder.add(
            RRset.of(COM_NAME, RdataType.NS, NS(target=com_ns), ttl=300)
        )
        root_builder.add(_glue_rrset(com_ns, COM_SERVER))
    else:
        for index, address in enumerate(com_addrs, start=1):
            com_ns = Name.from_text(f"ns{index}", origin=COM_NAME)
            root_builder.add(
                RRset.of(COM_NAME, RdataType.NS, NS(target=com_ns), ttl=300)
            )
            root_builder.add(_glue_rrset(com_ns, address))
    for ds in com_built.ds_rdatas:
        root_builder.add(RRset.of(COM_NAME, RdataType.DS, ds, ttl=300))
    root_built = root_builder.build()
    root_server = AuthoritativeServer(name="a.root-servers.net")
    root_server.add_zone(root_built.zone)
    if topology is None:
        fabric.register(ROOT_SERVER, root_server)
    else:
        replicas["root"] = register_replicas(fabric, "root", root_addrs, root_server)

    assert root_built.ksk is not None
    trust_anchor = make_ds(ROOT_NAME, root_built.ksk.dnskey(), 2)

    return Testbed(
        fabric=fabric,
        root_hints=list(root_addrs),
        trust_anchors=[trust_anchor],
        cases=deployed,
        parent_built=parent_built,
        root_built=root_built,
        com_built=com_built,
        replicas=replicas,
    )
