"""Query access-control lists (the ``allow-query`` knob).

Models BIND-style ACLs closely enough for the testbed's
``allow-query-none`` and ``allow-query-localhost`` cases: a list of
prefixes matched against the client source address, with ``none`` and
``localhost`` built-ins.
"""

from __future__ import annotations

import ipaddress
from dataclasses import dataclass, field


@dataclass
class Acl:
    """An allow-list of client prefixes."""

    prefixes: list[str] = field(default_factory=lambda: ["0.0.0.0/0", "::/0"])
    name: str = "any"

    @classmethod
    def any(cls) -> "Acl":
        return cls()

    @classmethod
    def none(cls) -> "Acl":
        return cls(prefixes=[], name="none")

    @classmethod
    def localhost(cls) -> "Acl":
        return cls(prefixes=["127.0.0.0/8", "::1/128"], name="localhost")

    @classmethod
    def from_keyword(cls, keyword: str | None) -> "Acl":
        if keyword in (None, "any"):
            return cls.any()
        if keyword == "none":
            return cls.none()
        if keyword == "localhost":
            return cls.localhost()
        return cls(prefixes=[keyword], name=keyword)

    def allows(self, source: str) -> bool:
        try:
            address = ipaddress.ip_address(source)
        except ValueError:
            return False
        for prefix in self.prefixes:
            network = ipaddress.ip_network(prefix)
            if address.version == network.version and address in network:
                return True
        return False
