"""Authoritative nameserver.

Serves one or more zones over the fabric: answers, referrals with glue
and DS (or the NSEC3 proof of its absence), NXDOMAIN/NODATA with denial
records, DNSSEC records when the client sets DO, and ACL enforcement.
Behaviour quirks (REFUSED-for-everything, dropped OPT, mismatched
answers…) used by the wild-scan tier live in
:mod:`repro.server.behaviors` and wrap this class.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..dns.edns import Edns
from ..dns.message import Message
from ..dns.name import Name
from ..dns.rcode import Rcode
from ..dns.render import RenderedWireCache, parse_equivalent, wire_key
from ..dns.rrset import RRset
from ..dns.types import RdataType
from ..zones.zone import LookupStatus, Zone
from .acl import Acl


@dataclass
class ServerStats:
    queries: int = 0
    refused: int = 0
    nxdomain: int = 0
    referrals: int = 0


class AuthoritativeServer:
    """An authoritative DNS server endpoint for the fabric."""

    def __init__(
        self,
        name: str = "ns",
        acl: Acl | None = None,
        report_agent: Name | None = None,
        allow_transfer: Acl | None = None,
        render_cache: RenderedWireCache | None = None,
    ):
        self.name = name
        self.acl = acl or Acl.any()
        #: When set, responses advertise this DNS Error Reporting agent
        #: domain via the EDNS0 Report-Channel option (RFC 9567).
        self.report_agent = report_agent
        #: Who may AXFR (RFC 5936). Registries default to nobody; the
        #: paper's .se/.nu/.ch/.li allow it.
        self.allow_transfer = allow_transfer or Acl.none()
        #: Optional rendered-response wire cache (see
        #: :mod:`repro.dns.render`): a repeat query is answered from the
        #: stored wire with only the message ID patched — authoritative
        #: answers carry the zone's static TTLs, so no decrement is
        #: needed, and the entry expires after the smallest TTL it
        #: contains.  None (the default) keeps the seed byte path.
        self.render_cache = render_cache
        self._zones: dict[Name, Zone] = {}
        self.stats = ServerStats()

    def add_zone(self, zone: Zone) -> None:
        self._zones[zone.origin] = zone

    def zones(self) -> list[Zone]:
        return list(self._zones.values())

    def find_zone(self, qname: Name) -> Zone | None:
        """Deepest zone this server is authoritative for above ``qname``.

        Walks the qname's suffixes longest-first with dict lookups
        (Name hashes and compares case-folded, the same relation
        ``is_subdomain_of`` uses), so lookup cost tracks the qname's
        label count instead of the number of hosted zones.
        """
        zones = self._zones
        if not zones:
            return None
        labels = qname.labels
        for start in range(len(labels)):
            zone = zones.get(Name(labels[start:]))
            if zone is not None:
                return zone
        return None

    # -- fabric endpoint protocol ------------------------------------------------

    def handle_datagram(self, wire: bytes, source: str) -> bytes | None:
        key = self._render_key(wire, source)
        if key is not None:
            served = self.render_cache.serve(key, wire)
            if served is not None:
                self.stats.queries += 1
                return served
        try:
            query = Message.from_wire(wire)
        except Exception:
            response = Message(rcode=Rcode.FORMERR, qr=True)
            return response.to_wire()
        return self._respond(query, source, key)[0]

    def handle_paved(
        self, wire: bytes, source: str, query: Message
    ) -> tuple[bytes | None, Message | None]:
        """Fabric fast path: the caller's parsed query skips the wire
        decode, and the response Message rides back whenever re-parsing
        the encoded wire provably reproduces it (see
        :meth:`repro.net.fabric.NetworkFabric.send`)."""
        key = self._render_key(wire, source)
        if key is not None:
            served = self.render_cache.serve(key, wire)
            if served is not None:
                self.stats.queries += 1
                return served, None
        return self._respond(query, source, key, paved=True)

    def _render_key(self, wire: bytes, source: str):
        if self.render_cache is None:
            return None
        raw_key = wire_key(wire)
        if raw_key is None:
            return None
        # ACL outcome is the only response input outside the query
        # bytes, so it rides in the key.
        return (raw_key, self.acl.allows(source))

    def _respond(
        self, query: Message, source: str, key, paved: bool = False
    ) -> tuple[bytes | None, Message | None]:
        response = self.handle_query(query, source)
        if response is None:
            return None, None
        # RFC 6891: the response must fit the client's advertised UDP
        # payload (512 octets without EDNS); otherwise truncate + TC.
        max_size = query.edns.payload if query.edns is not None else 512
        encoded = response.to_wire(max_size=max(512, max_size))
        if key is not None:
            self.render_cache.store(key, encoded, expire_after_min_ttl=True)
        if paved and parse_equivalent(response, encoded):
            return encoded, response
        return encoded, None

    def handle_stream(self, wire: bytes, source: str) -> bytes | None:
        """TCP semantics: same answer, no size limit, never truncated."""
        try:
            query = Message.from_wire(wire)
        except Exception:
            return Message(rcode=Rcode.FORMERR, qr=True).to_wire()
        if query.question and query.question[0].rdtype == RdataType.AXFR:
            return self.handle_axfr(query, source).to_wire()
        response = self.handle_query(query, source)
        return response.to_wire() if response is not None else None

    def handle_axfr(self, query: Message, source: str = "192.0.2.0") -> Message:
        """Full zone transfer (RFC 5936): SOA, everything, SOA again."""
        self.stats.queries += 1
        question = query.question[0]
        response = query.make_response(recursion_available=False)
        if not self.allow_transfer.allows(source):
            self.stats.refused += 1
            response.rcode = Rcode.REFUSED
            return response
        zone = self._zones.get(question.name)
        if zone is None:
            response.rcode = Rcode.NOTAUTH
            return response
        response.aa = True
        soa = zone.find(zone.origin, RdataType.SOA)
        if soa is None:
            response.rcode = Rcode.SERVFAIL
            return response
        response.answer.append(soa.copy())
        for rrset in zone.all_rrsets():
            if rrset.rdtype == RdataType.SOA:
                continue
            response.answer.append(rrset.copy())
        response.answer.append(soa.copy())
        return response

    def handle_query(self, query: Message, source: str = "192.0.2.0") -> Message | None:
        self.stats.queries += 1
        if not query.question:
            response = query.make_response(recursion_available=False)
            response.rcode = Rcode.FORMERR
            return response

        if not self.acl.allows(source):
            self.stats.refused += 1
            response = query.make_response(recursion_available=False)
            response.rcode = Rcode.REFUSED
            return response

        question = query.question[0]
        qname, rdtype = question.name, question.rdtype
        if rdtype == RdataType.AXFR:
            # Zone transfers require TCP (RFC 5936 section 4.2).
            response = query.make_response(recursion_available=False)
            response.rcode = Rcode.REFUSED
            return response
        dnssec_ok = query.edns is not None and query.edns.dnssec_ok

        zone = self.find_zone(qname)
        if zone is None:
            self.stats.refused += 1
            response = query.make_response(recursion_available=False)
            response.rcode = Rcode.REFUSED
            return response

        response = query.make_response(recursion_available=False)
        response.aa = True
        if query.edns is not None and response.edns is None:
            response.edns = Edns(dnssec_ok=dnssec_ok)
        if query.edns is not None and self.report_agent is not None:
            from ..resolver.error_reporting import ReportChannelOption

            response.edns.options.append(ReportChannelOption.make(self.report_agent))

        result = zone.lookup(qname, rdtype)

        if result.status is LookupStatus.DELEGATION:
            self.stats.referrals += 1
            response.aa = False
            self._fill_referral(response, zone, result.node_name, dnssec_ok)
            return response

        if result.status in (LookupStatus.ANSWER, LookupStatus.CNAME):
            for rrset in result.rrsets:
                response.answer.append(rrset.copy())
                if dnssec_ok:
                    sigs = zone.rrsigs_for(rrset.name, rrset.rdtype)
                    if sigs is None and result.node_name is not None:
                        # Wildcard synthesis: serve the wildcard's RRSIG
                        # under the synthesized owner name; only the RRSIG
                        # labels field betrays the expansion (RFC 4035).
                        sigs = zone.rrsigs_for(result.node_name, rrset.rdtype)
                        if sigs is not None:
                            sigs = sigs.copy()
                            sigs.name = rrset.name
                    if sigs is not None:
                        response.answer.append(sigs.copy())
            return response

        # Negative answers
        soa = zone.find(zone.origin, RdataType.SOA)
        if soa is not None:
            response.authority.append(soa.copy())
            if dnssec_ok:
                sigs = zone.rrsigs_for(zone.origin, RdataType.SOA)
                if sigs is not None:
                    response.authority.append(sigs.copy())
        if result.status is LookupStatus.NXDOMAIN:
            self.stats.nxdomain += 1
            response.rcode = Rcode.NXDOMAIN
        if dnssec_ok:
            for rrset in zone.denial_rrsets(qname):
                response.authority.append(rrset.copy())
        return response

    # -- helpers -------------------------------------------------------------------------

    def _fill_referral(
        self, response: Message, zone: Zone, cut: Name | None, dnssec_ok: bool
    ) -> None:
        if cut is None:
            return
        ns = zone.find(cut, RdataType.NS)
        if ns is not None:
            response.authority.append(ns.copy())
            self._add_glue(response, zone, ns)
        ds = zone.find(cut, RdataType.DS)
        if ds is not None:
            response.authority.append(ds.copy())
            if dnssec_ok:
                sigs = zone.rrsigs_for(cut, RdataType.DS)
                if sigs is not None:
                    response.authority.append(sigs.copy())
        elif dnssec_ok:
            # Prove the delegation is unsigned (insecure referral proof).
            for rrset in zone.denial_rrsets(cut):
                response.authority.append(rrset.copy())

    def _add_glue(self, response: Message, zone: Zone, ns_rrset: RRset) -> None:
        from ..dns.rdata import NS as NsRdata

        for rdata in ns_rrset.rdatas:
            if not isinstance(rdata, NsRdata):
                continue
            target = rdata.target
            if not target.is_subdomain_of(zone.origin):
                continue
            for glue_type in (RdataType.A, RdataType.AAAA):
                glue = zone.find(target, glue_type)
                if glue is not None:
                    response.additional.append(glue.copy())
