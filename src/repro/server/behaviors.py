"""Scripted server behaviours for the wild-scan tier.

The Internet-wide scan (paper Section 4) is dominated not by broken
DNSSEC but by broken *servers*: authorities that answer REFUSED or
SERVFAIL, time out, reply NOTAUTH, drop the OPT record, or answer a
different question.  These wrappers impose such behaviours on top of a
normal :class:`AuthoritativeServer` (or replace it entirely), so the
resolver under test observes exactly the pathologies Cloudflare's
EXTRA-TEXT strings describe.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from ..dns.edns import Edns
from ..dns.message import Message
from ..dns.name import Name
from ..dns.rcode import Rcode
from ..dns.rdata import A
from ..dns.rrset import RRset
from ..dns.types import RdataType
from .authoritative import AuthoritativeServer


class Behavior(Enum):
    """Server-side pathologies observed in the wild scan."""

    NORMAL = "normal"
    REFUSED = "refused"  # answers REFUSED to everything
    SERVFAIL = "servfail"
    TIMEOUT = "timeout"  # never answers
    NOTAUTH = "notauth"  # paper: Cached Error domains' authorities
    NO_EDNS = "no-edns"  # drops the OPT record (Invalid Data)
    MISMATCHED_QUESTION = "mismatched-question"
    REFUSE_NON_RECURSIVE = "refuse-non-recursive"  # paper section 4.2 item 14


@dataclass
class BehaviorServer:
    """Fabric endpoint wrapping an inner server with a pathology."""

    inner: AuthoritativeServer
    behavior: Behavior = Behavior.NORMAL

    def handle_datagram(self, wire: bytes, source: str) -> bytes | None:
        if self.behavior is Behavior.TIMEOUT:
            return None
        try:
            query = Message.from_wire(wire)
        except Exception:
            return Message(rcode=Rcode.FORMERR, qr=True).to_wire()

        if self.behavior is Behavior.REFUSED:
            return self._rcode_response(query, Rcode.REFUSED)
        if self.behavior is Behavior.SERVFAIL:
            return self._rcode_response(query, Rcode.SERVFAIL)
        if self.behavior is Behavior.NOTAUTH:
            return self._rcode_response(query, Rcode.NOTAUTH)
        if self.behavior is Behavior.REFUSE_NON_RECURSIVE and not query.rd:
            return self._rcode_response(query, Rcode.REFUSED)

        response = self.inner.handle_query(query, source)
        if response is None:
            return None
        if self.behavior is Behavior.NO_EDNS:
            response.edns = None
        elif self.behavior is Behavior.MISMATCHED_QUESTION and response.question:
            original = response.question[0]
            response.question = [
                type(original)(
                    name=Name.from_text("wrong.invalid."),
                    rdtype=original.rdtype,
                    rdclass=original.rdclass,
                )
            ]
        return response.to_wire()

    @staticmethod
    def _rcode_response(query: Message, rcode: Rcode) -> bytes:
        response = query.make_response(recursion_available=False)
        response.rcode = rcode
        if query.edns is not None and response.edns is None:
            response.edns = Edns()
        return response.to_wire()


def make_simple_authority(
    zone_origin: Name, address: str = "192.0.2.10"
) -> AuthoritativeServer:
    """A minimal one-zone authority answering A queries (test helper)."""
    from ..zones.zone import Zone

    server = AuthoritativeServer(name=f"ns.{zone_origin}")
    zone = Zone(zone_origin)
    zone.add(RRset.of(zone_origin, RdataType.A, A(address=address), ttl=300))
    from ..dns.rdata import NS, SOA

    zone.add(
        RRset.of(
            zone_origin,
            RdataType.SOA,
            SOA(
                mname=Name.from_text("ns1", origin=zone_origin),
                rname=Name.from_text("hostmaster", origin=zone_origin),
                serial=1,
            ),
        )
    )
    zone.add(
        RRset.of(
            zone_origin,
            RdataType.NS,
            NS(target=Name.from_text("ns1", origin=zone_origin)),
        )
    )
    server.add_zone(zone)
    return server
