"""Authoritative servers: zone serving, ACLs, and scripted pathologies."""

from .acl import Acl
from .authoritative import AuthoritativeServer, ServerStats
from .behaviors import Behavior, BehaviorServer, make_simple_authority

__all__ = [
    "Acl",
    "AuthoritativeServer",
    "Behavior",
    "BehaviorServer",
    "ServerStats",
    "make_simple_authority",
]
