"""repro — a full reproduction of *Extended DNS Errors: Unlocking the
Full Potential of DNS Troubleshooting* (IMC 2023).

The package builds, from scratch, every system the paper measures:

* :mod:`repro.dns` — DNS wire format, EDNS(0), and the RFC 8914
  Extended DNS Error option with the IANA registry (paper Table 1);
* :mod:`repro.dnssec` — keys, signing, DS digests, NSEC3, and a
  chain-of-trust validator with fine-grained failure traces;
* :mod:`repro.zones` / :mod:`repro.server` — authoritative zones,
  the signed-zone builder with the paper's Table 3 mutations, and
  (mis)behaving nameservers;
* :mod:`repro.net` — the simulated Internet (virtual clock, fabric,
  special-purpose address registries);
* :mod:`repro.resolver` — a validating recursive resolver with the
  seven vendor EDE profiles of the paper's Table 4;
* :mod:`repro.testbed` — the 63 misconfigured subdomains of
  ``extended-dns-errors.com`` and the matrix runner (Section 3);
* :mod:`repro.scan` — the synthetic Internet-wide scan (Section 4,
  Figures 1-2);
* :mod:`repro.experiments` — one harness per table/figure, with
  paper-vs-measured reports.

Quickstart::

    from repro.testbed import build_testbed, run_matrix
    matrix = run_matrix(build_testbed())
    print(matrix.inconsistency_ratio())   # ~0.94, as in the paper
"""

__version__ = "1.0.0"

from . import dns, dnssec, net, resolver, server, testbed, zones

__all__ = [
    "__version__",
    "dns",
    "dnssec",
    "net",
    "resolver",
    "server",
    "testbed",
    "zones",
]
