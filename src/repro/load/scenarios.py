"""The five load scenarios, as declarative phase schedules.

Every scenario is self-contained: it runs on a fresh world and opens
with an unreported ``warm`` phase that sweeps the hot set (one positive
and one NXDOMAIN name per hot domain) into the resolver cache before
the reported phases begin.  Reported phases:

``steady``
    Baseline Zipf traffic at a comfortable offered load; the cache
    warms up, nearly everything is answered fresh.
``flash``
    Flash crowd: the arrival rate jumps ~8x and 90% of queries
    concentrate on the hot set — single-flight coalescing and the
    always-served cache path absorb the spike.
``stampede``
    Cache stampede: the clock leaps past every TTL, then a synchronized
    burst re-queries the (now expired) popular names; concurrent lanes
    pile onto the same names and must coalesce rather than multiply
    upstream fetches.
``outage`` / ``recovery``
    The chaos fabric takes the hot set's hosting servers down for the
    whole outage phase (entries are already TTL-expired, i.e.
    stale-eligible).  The degradation contract is measured here: ≥90%
    of hot-name queries answered (fresh or stale with EDE 3/19), no
    answered query past its client's deadline, breakers open.  The
    window then lapses; during ``recovery`` half-open probes re-close
    every breaker.
``overload``
    Offered load far beyond the shed threshold: per-client rates a
    multiple of the token-bucket refill, with a tail-heavy mix so
    cache-miss work also presses the in-flight cap.  Sheds must be
    REFUSED + Prohibited (18) while cache/stale hits keep flowing.

One extra scenario lives outside the five-scenario suite:

``shard-outage``
    The cluster recovery drill (``serve --drill shard-outage`` and the
    benchmark's ``failover`` section): a seeded victim shard crashes
    mid-run, the health monitor ejects it from the hash ring, its key
    range fails over to ring successors, and a cold restart plus one
    half-open probe rejoins it — with ≥99% of in-window queries still
    answered, zero datagrams reaching the ejected shard, and routing
    restored to the pre-fault map.  Needs ``shards >= 2``, which is why
    it is not part of the default (single-resolver) suite order.

Phase durations interlock with three constants elsewhere: the wild
zones' 300 s record TTL (expiry jumps are 400 s), the 86 400 s
serve-stale window (everything expired stays stale-eligible), and the
30 s breaker cooldown (the recovery phase is long enough for probes).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .arrivals import OnOffProcess


@dataclass(frozen=True)
class PhaseSpec:
    """One phase of one scenario."""

    name: str
    #: Virtual seconds of arrivals to schedule.
    duration: float
    arrivals: OnOffProcess
    #: Zipf exponent for the base mix (lower = heavier tail).
    zipf_s: float = 1.1
    #: Fraction of queries forced onto the hot set.
    hot_weight: float = 0.3
    #: Virtual-clock jump applied *before* this phase (TTL expiry leaps).
    advance_before: float = 0.0
    #: Install a chaos outage covering this phase's hot hosting servers
    #: for this many seconds (0 = no chaos action).
    outage_seconds: float = 0.0
    #: Shard-level fault applied at this phase's start: ``"crash"``
    #: kills the drill victim shard, ``"restart"`` brings it back with a
    #: cold cache ("" = no shard fault).  Requires a sharded scenario.
    shard_fault: str = ""
    #: Whether this phase appears in the report (warm phases do not).
    report: bool = True


@dataclass(frozen=True)
class ScenarioSpec:
    """A named scenario: warm-up plus its reported phases."""

    name: str
    title: str
    phases: tuple[PhaseSpec, ...] = field(default_factory=tuple)
    #: Minimum shard count this scenario needs (0 = run with whatever
    #: the engine config says).  The shard-outage drill forces a real
    #: cluster even when the suite otherwise runs single-resolver.
    shards: int = 0


def _warm() -> PhaseSpec:
    """The shared unreported warm-up: seed the cache, hot set first."""
    return PhaseSpec(
        name="warm",
        duration=20.0,
        arrivals=OnOffProcess(rate=1.0),
        hot_weight=0.7,
        report=False,
    )


SCENARIOS: dict[str, ScenarioSpec] = {
    spec.name: spec
    for spec in (
        ScenarioSpec(
            "steady",
            "Steady state: baseline Zipf mix",
            (
                _warm(),
                PhaseSpec(
                    "steady",
                    duration=90.0,
                    arrivals=OnOffProcess(rate=0.8, mean_on=6.0, mean_off=3.0),
                ),
            ),
        ),
        ScenarioSpec(
            "flash",
            "Flash crowd: hot-name concentration spike",
            (
                _warm(),
                PhaseSpec(
                    "flash",
                    duration=45.0,
                    arrivals=OnOffProcess(rate=6.0, mean_on=3.0, mean_off=1.0),
                    hot_weight=0.9,
                ),
            ),
        ),
        ScenarioSpec(
            "stampede",
            "Cache stampede: synchronized TTL expiry of popular names",
            (
                _warm(),
                PhaseSpec(
                    "stampede",
                    duration=20.0,
                    arrivals=OnOffProcess(rate=5.0),
                    hot_weight=0.95,
                    advance_before=400.0,  # past the 300 s TTLs
                ),
            ),
        ),
        ScenarioSpec(
            "outage",
            "Upstream outage and recovery (chaos fabric)",
            (
                _warm(),
                PhaseSpec(
                    "outage",
                    duration=120.0,
                    arrivals=OnOffProcess(rate=1.0, mean_on=8.0, mean_off=4.0),
                    hot_weight=1.0,
                    advance_before=400.0,  # expired => stale-eligible
                    outage_seconds=120.0,
                ),
                PhaseSpec(
                    "recovery",
                    duration=90.0,
                    arrivals=OnOffProcess(rate=0.8, mean_on=8.0, mean_off=4.0),
                    hot_weight=1.0,
                ),
            ),
        ),
        ScenarioSpec(
            "shard-outage",
            "Shard outage: crash, ejection, failover, cold-restart rejoin",
            (
                _warm(),
                PhaseSpec(
                    "baseline",
                    duration=30.0,
                    arrivals=OnOffProcess(rate=0.8, mean_on=6.0, mean_off=3.0),
                ),
                # The drill victim (a seeded pick from the schedule
                # domain) crashes at this phase's first instant: its
                # key range must detect-eject-reroute while ≥99% of
                # queries keep getting answered.
                PhaseSpec(
                    "shard-crash",
                    duration=60.0,
                    arrivals=OnOffProcess(rate=1.0, mean_on=6.0, mean_off=3.0),
                    hot_weight=0.5,
                    shard_fault="crash",
                ),
                # Cold restart at this phase's start; the 30 s health
                # cooldown elapses mid-phase, the single half-open probe
                # succeeds, and routing returns to the pre-fault map.
                PhaseSpec(
                    "shard-recovery",
                    duration=75.0,
                    arrivals=OnOffProcess(rate=0.8, mean_on=6.0, mean_off=3.0),
                    hot_weight=0.5,
                    shard_fault="restart",
                ),
            ),
            shards=4,
        ),
        ScenarioSpec(
            "overload",
            "Overload: offered load beyond the shed threshold",
            (
                _warm(),
                PhaseSpec(
                    "overload",
                    duration=12.0,
                    arrivals=OnOffProcess(rate=50.0, mean_on=2.0, mean_off=0.5),
                    zipf_s=0.8,
                    hot_weight=0.5,
                ),
            ),
        ),
    )
}

#: Canonical suite order (also the order in ``BENCH_serve.json``).
#: The ``shard-outage`` drill is not part of the five-scenario suite —
#: it needs a sharded world — and rides in the benchmark's separate
#: ``failover`` section instead.
SCENARIO_ORDER: tuple[str, ...] = (
    "steady",
    "flash",
    "stampede",
    "outage",
    "overload",
)

#: Deterministic per-scenario index for seed derivation: suite
#: scenarios keep their suite position; extras (the drills) follow in
#: sorted order so adding one never renumbers another's schedule.
SCENARIO_INDEX: dict[str, int] = {
    **{name: index for index, name in enumerate(SCENARIO_ORDER)},
    **{
        name: len(SCENARIO_ORDER) + offset
        for offset, name in enumerate(
            sorted(set(SCENARIOS) - set(SCENARIO_ORDER))
        )
    },
}
