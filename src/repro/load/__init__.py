"""``repro.load`` — a seeded client-population load generator.

The resilience layer (breakers, deadline budgets, serve-stale, overload
shedding) exists because the paper's wild measurements show that real
resolvers *degrade* under stress rather than fail.  Unit tests prove the
mechanisms; this package proves the behaviour at serving intensity, the
way ZDNS-style tools prove scan throughput: by replaying a large,
seeded, virtual-clock client workload through a live
:class:`~repro.resolver.resilience.ResilientFrontend` and reporting what
the clients actually experienced.

The pieces:

* :mod:`repro.load.population` — the client population (per-client
  RTT/deadline classes) and the heavy-tailed Zipf query mix over the
  synthetic domain population's Tranco-like ranking;
* :mod:`repro.load.arrivals` — bursty per-client on/off (interrupted
  Poisson) arrival processes, seeded and replayable;
* :mod:`repro.load.scenarios` — the five phased scenarios: steady
  state, flash crowd, cache stampede, upstream outage + recovery
  (driven by the chaos fabric), and overload beyond the shed threshold;
* :mod:`repro.load.engine` — the replay engine: schedules every query
  event up front, then drives them through the frontend on the
  deterministic virtual-time lane pool, so coalescing, breaker
  half-open probes, and refresh-queue draining run under genuine
  concurrency while staying byte-replayable;
* :mod:`repro.load.report` — per-phase reports (latency percentiles,
  answered/stale/refused/shed fractions, EDE mix, breaker transitions)
  sourced from the ``repro.obs`` metrics registry, plus the text
  renderer shared by ``python -m repro.bench --serve`` and
  ``python -m repro.tools.serve --drill``;
* :mod:`repro.load.bench` — the two-jitter-seed benchmark runner that
  writes ``BENCH_serve.json`` and enforces the degradation contract,
  plus the ``failover`` section replaying the ``shard-outage`` cluster
  recovery drill under the same identity gate.

Everything is deterministic: the *schedule* seed fixes the population,
clients, arrival times, query mix and message IDs; the *jitter* seed
feeds only the engine's retry-jitter RNG and the chaos policy.  Phase
reports must be byte-identical across jitter seeds — the serving-side
analogue of the scan bench's categorization-identical gate.
"""

from __future__ import annotations

from .arrivals import OnOffProcess, client_arrivals
from .bench import (
    DEFAULT_JITTER_SEEDS,
    FAILOVER_SCENARIO,
    SERVE_SCHEMA,
    failover_bench_report,
    serve_bench_report,
    write_serve_report,
)
from .engine import LoadConfig, LoadEngine
from .population import (
    DEFAULT_CLIENT_CLASSES,
    Client,
    ClientClass,
    ZipfMix,
    build_clients,
)
from .report import percentile, render_phase_table
from .scenarios import SCENARIO_ORDER, SCENARIOS, PhaseSpec, ScenarioSpec

__all__ = [
    "DEFAULT_CLIENT_CLASSES",
    "DEFAULT_JITTER_SEEDS",
    "FAILOVER_SCENARIO",
    "SERVE_SCHEMA",
    "SCENARIOS",
    "SCENARIO_ORDER",
    "Client",
    "ClientClass",
    "LoadConfig",
    "LoadEngine",
    "OnOffProcess",
    "PhaseSpec",
    "ScenarioSpec",
    "ZipfMix",
    "build_clients",
    "client_arrivals",
    "failover_bench_report",
    "percentile",
    "render_phase_table",
    "serve_bench_report",
    "write_serve_report",
]
