"""The load replay engine: schedule, drive, measure.

The engine pre-computes every query event of a scenario — arrival time,
client, qname, encoded wire — from the *schedule* seed, then replays
them through a :class:`~repro.resolver.resilience.ResilientFrontend`
on the deterministic virtual-time lane pool.  A lane picks up the next
event, advances its lane clock to the arrival time (or carries the
queueing delay if it is already past it), and hands the datagram to the
frontend exactly like the UDP server would; latency is read back off
the virtual clock at the point a client would observe it.

Two seeds, two roles:

* ``schedule_seed`` — population ranking, client classes, arrival
  processes, Zipf draws, client message IDs.  Fixed per suite.
* ``jitter_seed`` — the engine's retry-jitter RNG
  (:class:`~repro.resolver.iterative.EngineConfig` ``rng_seed``) and
  the chaos policy's RNG.  The benchmark runs the suite under two
  jitter seeds and requires byte-identical phase reports: the resolver
  budget (1.5 s) sits below the per-upstream timeout (2 s), so a first
  timeout always exhausts the budget and jittered backoff never gets to
  sleep — upstream randomness must not leak into client-visible
  behaviour, and the gate proves it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..bench import DEFAULT_SEED, population_config_for
from ..cluster import ResolverCluster, ShardChaosPolicy
from ..dns.message import Message
from ..dns.name import Name
from ..dns.rcode import Rcode
from ..dns.types import RdataType
from ..net.chaos import ChaosPolicy, Outage
from ..net.lanes import run_in_lanes
from ..obs import Observability
from ..resolver.cache import default_cache_config
from ..resolver.iterative import EngineConfig
from ..resolver.profiles import CLOUDFLARE
from ..resolver.recursive import RecursiveResolver
from ..resolver.resilience import (
    BreakerConfig,
    FrontendConfig,
    ResilienceConfig,
    ResilientFrontend,
)
from ..scan.population import Population, Profile, generate_population
from ..scan.wild import WildInternet
from .arrivals import client_arrivals
from .population import Client, ZipfMix, build_clients
from .report import build_phase_report, counter_delta, counter_values
from .scenarios import (
    SCENARIO_INDEX,
    SCENARIO_ORDER,
    SCENARIOS,
    PhaseSpec,
    ScenarioSpec,
)

#: Profiles that resolve to a cacheable NOERROR without validation —
#: the hot set is drawn from these so the outage phase has stale data
#: to degrade onto.
_HOT_ELIGIBLE = (Profile.VALID_UNSIGNED, Profile.VALID_SIGNED)


@dataclass
class LoadConfig:
    """Everything one benchmark suite run needs."""

    #: Synthetic population size (maps to the 1:k sampling scale).
    target_domains: int = 2000
    population_seed: int = DEFAULT_SEED
    #: Fixes the whole client workload; never varied by the bench.
    schedule_seed: int = 20230515
    #: Retry-jitter + chaos seed; the determinism gate varies this.
    jitter_seed: int = 1
    workers: int = 8
    #: Offered-load multiplier, applied to the *client count* rather
    #: than to per-client rates: a down-scaled run keeps each client's
    #: arrival rate (and therefore its RRL/token-bucket behaviour)
    #: intact while shrinking the population.
    scale: float = 1.0
    clients: int = 64
    hot_size: int = 8
    #: Resolver-side client deadline budget.  Must stay below the 2 s
    #: upstream timeout (see module docstring) and below every client
    #: class deadline.
    client_deadline: float = 1.5
    breaker: BreakerConfig = field(
        default_factory=lambda: BreakerConfig(failure_threshold=3, cooldown=30.0)
    )
    client_rate: float = 20.0
    client_burst: float = 40.0
    max_inflight: int = 6
    #: Resolver shards behind the consistent-hash router; 1 keeps the
    #: classic single frontend+resolver world byte-identical.
    shards: int = 1


@dataclass(frozen=True)
class _Event:
    at: float
    seq: int
    client: Client
    qname: str
    wire: bytes


def _derived_seed(*parts: int) -> int:
    value = 0
    for part in parts:
        value = (value * 1_000_003 + part + 1) % (2**63)
    return value


class LoadEngine:
    """Runs scenarios over one synthetic population."""

    def __init__(self, config: LoadConfig, population: Population | None = None):
        self.config = config
        self.population = population or generate_population(
            population_config_for(config.target_domains, config.population_seed)
        )
        self.clients = build_clients(
            max(4, round(config.clients * config.scale)), config.schedule_seed
        )
        self._ranked = [
            domain.name + "." for domain in self.population.tranco_domains()
        ]

    # -- world construction --------------------------------------------------

    def _build_world(self, min_shards: int = 0):
        """Wild internet + datagram endpoint + its resolver-like core.

        Returns ``(wild, endpoint, resolver)``: the endpoint speaks
        ``handle_datagram`` (a :class:`ResilientFrontend`, or a sharded
        :class:`~repro.cluster.ResolverCluster` when ``config.shards``
        > 1) and the resolver half answers ``run_refreshes`` /
        ``open_breaker_keys`` / ``refresh_backlog`` for the phase loop.
        ``min_shards`` lets a scenario force a real cluster (the
        shard-outage drill) regardless of the engine config.
        """
        shards = max(self.config.shards, min_shards)
        wild = WildInternet(self.population)
        obs = Observability(clock=wild.fabric.clock)
        frontend_config = FrontendConfig(
            client_rate=self.config.client_rate,
            client_burst=self.config.client_burst,
            max_inflight=self.config.max_inflight,
            # The engine drives background refreshes itself, after
            # measuring client-visible service time.
            inline_refreshes=False,
        )
        if shards > 1:
            cluster = ResolverCluster(
                fabric=wild.fabric,
                profile=CLOUDFLARE,
                root_hints=wild.root_hints,
                trust_anchors=wild.trust_anchors,
                shards=shards,
                validate=False,
                engine_config=EngineConfig(rng_seed=self.config.jitter_seed),
                resilience=ResilienceConfig(
                    breaker=self.config.breaker,
                    client_deadline=self.config.client_deadline,
                ),
                cache_config=default_cache_config(),
                frontend_config=frontend_config,
                obs=obs,
            )
            return wild, cluster, cluster
        resolver = RecursiveResolver(
            fabric=wild.fabric,
            profile=CLOUDFLARE,
            root_hints=wild.root_hints,
            trust_anchors=wild.trust_anchors,
            validate=False,
            engine_config=EngineConfig(rng_seed=self.config.jitter_seed),
            resilience=ResilienceConfig(
                breaker=self.config.breaker,
                client_deadline=self.config.client_deadline,
            ),
            cache_config=default_cache_config(),
            obs=obs,
        )
        frontend = ResilientFrontend(resolver, frontend_config)
        return wild, frontend, resolver

    def _hot_domains(self, wild: WildInternet) -> list:
        hot = []
        for domain in self.population.tranco_domains():
            if domain.profile not in _HOT_ELIGIBLE:
                continue
            if not wild.server_address_for(domain).startswith("45."):
                continue
            hot.append(domain)
            if len(hot) >= self.config.hot_size:
                break
        if not hot:
            raise ValueError("population too small to pick a hot set")
        return hot

    # -- scheduling ----------------------------------------------------------

    def _build_events(
        self,
        phase: PhaseSpec,
        scenario_index: int,
        phase_index: int,
        start: float,
        mix: ZipfMix,
        sweep: tuple[str, ...] = (),
    ) -> list[_Event]:
        base = self.config.schedule_seed
        process = phase.arrivals
        raw: list[tuple[float, str, str]] = []
        for name_index, name in enumerate(sweep):
            client = self.clients[name_index % len(self.clients)]
            raw.append((start, client.address, name))
        for client_index, client in enumerate(self.clients):
            rng = random.Random(
                _derived_seed(base, scenario_index, phase_index, client_index)
            )
            for at in client_arrivals(process, start, phase.duration, rng):
                raw.append((at, client.address, mix.sample(rng)))
        raw.sort()
        by_address = {client.address: client for client in self.clients}
        wire_rng = random.Random(
            _derived_seed(base, scenario_index, phase_index, 0x5EED)
        )
        events = []
        for seq, (at, address, qname) in enumerate(raw):
            wire = Message.make_query(
                Name.from_text(qname),
                RdataType.A,
                recursion_desired=True,
                rng=wire_rng,
            ).to_wire()
            events.append(
                _Event(
                    at=at, seq=seq, client=by_address[address],
                    qname=qname, wire=wire,
                )
            )
        return events

    # -- execution -----------------------------------------------------------

    @staticmethod
    def _classify(response: Message) -> str:
        if response.rcode == Rcode.REFUSED:
            return "refused"
        if response.rcode == Rcode.FORMERR:
            return "formerr"
        if response.rcode == Rcode.SERVFAIL:
            return "servfail"
        if response.tc and not response.answer:
            return "truncated"
        codes = response.ede_codes
        if 3 in codes or 19 in codes:
            return "stale"
        return "fresh"

    def _run_phase(
        self,
        endpoint,
        resolver,
        clock,
        events: list[_Event],
        hot_names: frozenset[str],
    ) -> dict:
        latencies: list[float] = []
        queue_waits: list[float] = []
        classified: dict[str, int] = {}
        tallies = {"violations": 0, "hot_total": 0, "hot_answered": 0}

        def handle(event: _Event) -> None:
            now = clock.now()
            if event.at > now:
                clock.advance(event.at - now)
            started = clock.now()
            wire = endpoint.handle_datagram(event.wire, event.client.address)
            finished = clock.now()
            service = finished - started
            category = self._classify(Message.from_wire(wire))
            classified[category] = classified.get(category, 0) + 1
            latencies.append(finished - event.at + event.client.klass.rtt)
            queue_waits.append(started - event.at)
            if category in ("fresh", "stale"):
                if service > event.client.klass.deadline + 1e-9:
                    tallies["violations"] += 1
            if event.qname in hot_names:
                tallies["hot_total"] += 1
                if category in ("fresh", "stale"):
                    tallies["hot_answered"] += 1
            # Stale-while-revalidate work happens after the response is
            # on the wire: the lane (this simulated server thread) still
            # pays the virtual time, but no client waits on it.
            resolver.run_refreshes()
        run_in_lanes(clock, self.config.workers, events, handle)
        return {
            "latencies": latencies,
            "queue_waits": queue_waits,
            "classified": classified,
            **tallies,
        }

    def run_scenario(self, name: str) -> dict:
        spec: ScenarioSpec = SCENARIOS[name]
        scenario_index = SCENARIO_INDEX[name]
        wild, endpoint, resolver = self._build_world(min_shards=spec.shards)
        clock = wild.fabric.clock
        registry = endpoint.obs.registry

        # Shard-fault drill wiring: the victim pick and fault instants
        # are pure schedule-domain facts (they decide which queries get
        # degraded, a client-visible outcome), so the policy is seeded
        # from the *schedule* seed — the jitter seed must never reach
        # it.  ``endpoint`` is the ResolverCluster whenever a phase
        # carries a shard fault (spec.shards >= 2 forces it).
        shard_policy = None
        victim: int | None = None
        if any(phase.shard_fault for phase in spec.phases):
            if not isinstance(endpoint, ResolverCluster):
                raise ValueError(
                    f"scenario {name!r} injects shard faults but the "
                    "world is not a cluster"
                )
            shard_policy = ShardChaosPolicy(
                _derived_seed(
                    self.config.schedule_seed, scenario_index, 0xC7A0
                )
            )
            victim = shard_policy.rng.randrange(len(endpoint.shards))
            endpoint.install_shard_chaos(shard_policy)

        hot_domains = self._hot_domains(wild)
        hot_positive = tuple(domain.name + "." for domain in hot_domains)
        hot_missing = tuple(
            "missing." + domain.name + "." for domain in hot_domains
        )
        hot_names = hot_positive + hot_missing
        dead_addresses = frozenset(
            wild.server_address_for(domain) for domain in hot_domains
        )

        rows = []
        routing_probe = tuple(self._ranked[:256])
        pre_fault_routing: tuple[int, ...] | None = None
        victim_datagrams_before = 0
        for phase_index, phase in enumerate(spec.phases):
            if phase.advance_before:
                clock.advance(phase.advance_before)
            if phase.shard_fault == "crash":
                pre_fault_routing = endpoint.routing_snapshot(routing_probe)
                victim_datagrams_before = endpoint.frontends[
                    victim
                ].stats.datagrams
                shard_policy.crash(victim, at=clock.now())
            elif phase.shard_fault == "restart":
                shard_policy.restart(victim, at=clock.now(), cold_cache=True)
            if phase.outage_seconds:
                wild.fabric.install_chaos(
                    ChaosPolicy(
                        seed=self.config.jitter_seed,
                        outages=[
                            Outage(
                                0.0,
                                phase.outage_seconds,
                                target=dead_addresses.__contains__,
                            )
                        ],
                    )
                )
            mix = ZipfMix(
                self._ranked,
                s=phase.zipf_s,
                # The stale-NXDOMAIN side of the hot set rides along at
                # a fixed 1-in-5 of hot draws.
                hot=hot_positive * 4 + hot_missing,
                hot_weight=phase.hot_weight,
            )
            sweep = hot_names if phase.name == "warm" else ()
            events = self._build_events(
                phase, scenario_index, phase_index, clock.now(), mix, sweep
            )
            before = counter_values(registry)
            measured = self._run_phase(
                endpoint, resolver, clock, events, frozenset(hot_names)
            )
            if not phase.report:
                continue
            extras: dict = {}
            if phase.name == "outage":
                extras["cached_answered_fraction"] = round(
                    measured["hot_answered"] / measured["hot_total"], 6
                ) if measured["hot_total"] else 0.0
                extras["breakers_open_at_end"] = len(resolver.open_breaker_keys())
            if phase.name == "recovery":
                extras["breakers_closed"] = not resolver.open_breaker_keys()
                extras["refresh_backlog"] = resolver.refresh_backlog()
            if phase.name == "shard-crash":
                classified = measured["classified"]
                total = sum(classified.values())
                answered = classified.get("fresh", 0) + classified.get(
                    "stale", 0
                )
                extras["victim"] = victim
                extras["answered_fraction"] = (
                    round(answered / total, 6) if total else 0.0
                )
                extras["victim_state"] = endpoint.health.state_of(
                    victim
                ).value
                extras["ejections"] = endpoint.health.stats.ejections
                extras["failover_routed"] = (
                    endpoint.cluster_stats.failover_total
                )
                extras["victim_datagrams_in_phase"] = (
                    endpoint.frontends[victim].stats.datagrams
                    - victim_datagrams_before
                )
                extras["datagrams_while_ejected"] = (
                    endpoint.datagrams_while_ejected(victim)
                )
            if phase.name == "shard-recovery":
                classified = measured["classified"]
                total = sum(classified.values())
                answered = classified.get("fresh", 0) + classified.get(
                    "stale", 0
                )
                extras["answered_fraction"] = (
                    round(answered / total, 6) if total else 0.0
                )
                extras["victim_state"] = endpoint.health.state_of(
                    victim
                ).value
                extras["probe_successes"] = (
                    endpoint.health.stats.probe_successes
                )
                extras["probe_failures"] = (
                    endpoint.health.stats.probe_failures
                )
                extras["datagrams_while_ejected"] = (
                    endpoint.datagrams_while_ejected(victim)
                )
                extras["l2_owner_flushed"] = (
                    endpoint.l2.stats.owner_flushed
                    if endpoint.l2 is not None
                    else 0
                )
                extras["routing_restored"] = (
                    endpoint.routing_snapshot(routing_probe)
                    == pre_fault_routing
                )
            rows.append(
                build_phase_report(
                    scenario=name,
                    phase=phase.name,
                    latencies=measured["latencies"],
                    queue_waits=measured["queue_waits"],
                    classified=measured["classified"],
                    deadline_violations=measured["violations"],
                    delta=counter_delta(before, counter_values(registry)),
                    extras=extras,
                )
            )
        return {"scenario": name, "title": spec.title, "phases": rows}

    def run_suite(
        self, names: tuple[str, ...] = SCENARIO_ORDER
    ) -> dict:
        scenarios = [self.run_scenario(name) for name in names]
        return {
            "scenarios": scenarios,
            "queries_total": sum(
                row["queries"]
                for scenario in scenarios
                for row in scenario["phases"]
            ),
        }
