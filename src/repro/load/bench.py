"""The serving benchmark: run the suite twice, demand identical reports.

``serve_bench_report`` runs the full scenario suite once per jitter
seed.  The schedule seed — and therefore the client population, arrival
times, query mix and message IDs — is identical across runs; only the
resolver's retry-jitter RNG and the chaos policy RNG change.  The suite
is accepted only if every phase report is byte-identical across seeds
(compared as canonical JSON), which proves client-visible behaviour is
a pure function of the workload, not of upstream randomness.

On top of the determinism gate the report carries a ``contract`` block
re-checking the resilience guarantees the paper's degradation story
rests on (see :mod:`repro.load.scenarios` for the scenario-by-scenario
statement of each).

``failover_bench_report`` applies the same double-run discipline to the
``shard-outage`` cluster drill: the seeded victim crash, ejection,
failover and cold-restart rejoin must replay byte-identically across
retry-jitter seeds, and the failover contract (≥99% answered, zero
datagrams to the ejected shard, probe rejoin, routing restored) must
hold.  ``serve_bench_report`` embeds it as the ``failover`` section of
``BENCH_serve.json``.
"""

from __future__ import annotations

import json
import os
import time
from contextlib import nullcontext

from ..analysis.sanitizer import determinism_sanitizer

from .engine import LoadConfig, LoadEngine
from .scenarios import SCENARIO_ORDER

SERVE_SCHEMA = "repro-bench-serve/v1"

#: The scenario the failover section replays (needs a sharded world).
FAILOVER_SCENARIO = "shard-outage"

#: The two retry-jitter seeds the determinism gate compares.
DEFAULT_JITTER_SEEDS: tuple[int, ...] = (1, 20230524)


def _canonical(scenarios: list[dict]) -> str:
    return json.dumps(scenarios, sort_keys=True)


def _check_contract(scenarios: list[dict]) -> list[dict]:
    """Assert the resilience guarantees; one row per check."""
    rows = {
        (scenario["scenario"], phase["phase"]): phase
        for scenario in scenarios
        for phase in scenario["phases"]
    }
    checks: list[dict] = []

    def check(name: str, ok: bool, detail: str) -> None:
        checks.append({"check": name, "ok": bool(ok), "detail": detail})

    outage = rows.get(("outage", "outage"))
    recovery = rows.get(("outage", "recovery"))
    if outage is not None:
        fraction = outage.get("cached_answered_fraction", 0.0)
        check(
            "outage-cached-answered",
            fraction >= 0.9,
            f"hot-name queries answered during outage: {fraction:.1%} (floor 90%)",
        )
        check(
            "outage-breakers-opened",
            outage["breaker_transitions"].get("open", 0) > 0,
            "breakers opened during the outage "
            f"({outage['breaker_transitions'].get('open', 0)} transitions)",
        )
    if recovery is not None:
        check(
            "recovery-breakers-closed",
            bool(recovery.get("breakers_closed")),
            "every breaker CLOSED by the end of the recovery phase",
        )
    overload = rows.get(("overload", "overload"))
    if overload is not None:
        check(
            "overload-sheds",
            overload["fractions"]["shed"] > 0.0
            and overload["shed_reasons"].get("rrl", 0) > 0,
            f"overload sheds load via RRL ({overload['shed_reasons']})",
        )
    violations = sum(phase["deadline_violations"] for phase in rows.values())
    check(
        "no-deadline-violations",
        violations == 0,
        f"answered queries past their client deadline: {violations}",
    )
    return checks


def _check_failover_contract(phases: list[dict]) -> list[dict]:
    """The shard-outage drill's guarantees; one row per check."""
    rows = {phase["phase"]: phase for phase in phases}
    checks: list[dict] = []

    def check(name: str, ok: bool, detail: str) -> None:
        checks.append({"check": name, "ok": bool(ok), "detail": detail})

    crash = rows.get("shard-crash", {})
    recovery = rows.get("shard-recovery", {})
    crash_answered = crash.get("answered_fraction", 0.0)
    recovery_answered = recovery.get("answered_fraction", 0.0)
    check(
        "failover-answered",
        crash_answered >= 0.99 and recovery_answered >= 0.99,
        "in-window queries answered: "
        f"{crash_answered:.1%} during the crash, "
        f"{recovery_answered:.1%} during recovery (floor 99%)",
    )
    check(
        "failover-ejection",
        crash.get("ejections", 0) >= 1
        and crash.get("victim_state") == "ejected"
        and crash.get("failover_routed", 0) > 0,
        f"victim shard {crash.get('victim')} "
        f"{crash.get('victim_state', 'unknown')} after "
        f"{crash.get('ejections', 0)} ejection(s); "
        f"{crash.get('failover_routed', 0)} queries rerouted to successors",
    )
    check(
        "failover-blackhole",
        crash.get("victim_datagrams_in_phase", -1) == 0
        and crash.get("datagrams_while_ejected", -1) == 0
        and recovery.get("datagrams_while_ejected", -1) == 0,
        "datagrams reaching the ejected shard: "
        f"{crash.get('victim_datagrams_in_phase', '?')} in the crash "
        f"phase, {recovery.get('datagrams_while_ejected', '?')} while "
        "ejected overall (must be exactly 0)",
    )
    check(
        "failover-rejoin",
        recovery.get("victim_state") == "healthy"
        and recovery.get("probe_successes", 0) >= 1,
        f"victim {recovery.get('victim_state', 'unknown')} after "
        f"{recovery.get('probe_successes', 0)} successful half-open "
        f"probe(s) ({recovery.get('probe_failures', 0)} failed)",
    )
    check(
        "failover-routing-restored",
        bool(recovery.get("routing_restored")),
        "post-recovery routing equals the pre-fault map: "
        f"{recovery.get('routing_restored')}",
    )
    return checks


def failover_bench_report(
    scale: float = 1.0,
    workers: int = 8,
    jitter_seeds: tuple[int, ...] = DEFAULT_JITTER_SEEDS,
    target_domains: int = 2000,
    population=None,
) -> dict:
    """Run the shard-outage drill once per jitter seed and gate it.

    Same discipline as :func:`serve_bench_report`: the schedule seed
    (and with it the victim pick and fault instants) is fixed, only the
    retry-jitter seed varies, and the drill is accepted only when every
    phase report — ejection counters, blackhole tallies, routing
    verdicts and all — is byte-identical across seeds.
    """
    wall_start = time.perf_counter()  # repro: allow[wall-clock]
    guard = (
        determinism_sanitizer()
        if os.environ.get("REPRO_SANITIZER")
        else nullcontext()
    )
    runs: list[dict] = []
    with guard:
        for seed in jitter_seeds:
            config = LoadConfig(
                target_domains=target_domains,
                jitter_seed=seed,
                workers=workers,
                scale=scale,
            )
            engine = LoadEngine(config, population=population)
            population = engine.population  # build once, share across seeds
            runs.append(engine.run_scenario(FAILOVER_SCENARIO))
    wall = time.perf_counter() - wall_start  # repro: allow[wall-clock]

    reference = runs[0]
    mismatched = [
        seed
        for seed, run in zip(jitter_seeds[1:], runs[1:])
        if _canonical([run]) != _canonical([reference])
    ]
    deterministic = len(jitter_seeds) >= 2 and not mismatched
    contract = _check_failover_contract(reference["phases"])
    return {
        "schema": "repro-bench-failover/v1",
        "scenario": FAILOVER_SCENARIO,
        "config": {
            "scale": scale,
            "workers": workers,
            "target_domains": target_domains,
            "jitter_seeds": list(jitter_seeds),
        },
        "queries_per_seed": sum(row["queries"] for row in reference["phases"]),
        "deterministic": deterministic,
        "comparison_seeds": max(0, len(jitter_seeds) - 1),
        "mismatched_seeds": mismatched,
        "contract": contract,
        "contract_ok": all(row["ok"] for row in contract),
        "phases": reference["phases"],
        "wall_s": round(wall, 3),
    }


def serve_bench_report(
    scale: float = 1.0,
    workers: int = 8,
    jitter_seeds: tuple[int, ...] = DEFAULT_JITTER_SEEDS,
    scenario_names: tuple[str, ...] = SCENARIO_ORDER,
    target_domains: int = 2000,
    include_failover: bool = True,
) -> dict:
    """Run the suite once per jitter seed and assemble the report."""
    wall_start = time.perf_counter()  # repro: allow[wall-clock]
    guard = (
        determinism_sanitizer()
        if os.environ.get("REPRO_SANITIZER")
        else nullcontext()
    )
    runs: list[dict] = []
    with guard:
        population = None
        for seed in jitter_seeds:
            config = LoadConfig(
                target_domains=target_domains,
                jitter_seed=seed,
                workers=workers,
                scale=scale,
            )
            engine = LoadEngine(config, population=population)
            population = engine.population  # build once, share across seeds
            runs.append(engine.run_suite(scenario_names))
    wall = time.perf_counter() - wall_start  # repro: allow[wall-clock]

    reference = runs[0]["scenarios"]
    mismatched = [
        seed
        for seed, run in zip(jitter_seeds[1:], runs[1:])
        if _canonical(run["scenarios"]) != _canonical(reference)
    ]
    # The gate compares runs across seeds; with fewer than two seeds
    # nothing was compared, so "deterministic" must fail closed instead
    # of passing vacuously (--serve-seeds 1 used to exit 0 untested).
    deterministic = len(jitter_seeds) >= 2 and not mismatched
    contract = _check_contract(reference)
    report = {
        "schema": SERVE_SCHEMA,
        "config": {
            "scale": scale,
            "workers": workers,
            "target_domains": target_domains,
            "jitter_seeds": list(jitter_seeds),
            "scenarios": list(scenario_names),
        },
        "queries_per_seed": runs[0]["queries_total"],
        "deterministic": deterministic,
        "comparison_seeds": max(0, len(jitter_seeds) - 1),
        "mismatched_seeds": mismatched,
        "contract": contract,
        "contract_ok": all(row["ok"] for row in contract),
        "scenarios": reference,
        "wall_s": round(wall, 3),
    }
    if include_failover:
        report["failover"] = failover_bench_report(
            scale=scale,
            workers=workers,
            jitter_seeds=jitter_seeds,
            target_domains=target_domains,
            population=population,
        )
    return report


def write_serve_report(report: dict, path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
