"""Phase reports: metrics-registry deltas, percentiles, rendering.

A phase report has two data sources, deliberately kept separate:

* *client-side* observations (latency samples, per-query response
  classification, deadline checks) measured by the load engine at the
  point a real client would measure them;
* *server-side* counters pulled from the shared ``repro.obs`` metrics
  registry as a delta across the phase — the same numbers an operator's
  dashboard would show, so the report exercises the observability layer
  instead of growing ad-hoc counters.

Everything emitted is a pure function of the schedule seed, so the
two-jitter-seed determinism gate can require byte-identical phase
reports (see :mod:`repro.load.bench`).
"""

from __future__ import annotations

import math

from ..obs import MetricsRegistry

#: Flattened counter key: (family name, ((label, value), ...)).
CounterKey = tuple[str, tuple[tuple[str, str], ...]]


def counter_values(registry: MetricsRegistry) -> dict[CounterKey, float]:
    """Every counter/gauge series in ``registry``, flattened."""
    values: dict[CounterKey, float] = {}
    for family in registry.snapshot()["metrics"]:
        for series in family["series"]:
            if "value" not in series:  # histogram series carry buckets
                continue
            labels = tuple(sorted(series["labels"].items()))
            values[(family["name"], labels)] = series["value"]
    return values


def counter_delta(
    before: dict[CounterKey, float], after: dict[CounterKey, float]
) -> dict[CounterKey, float]:
    """Per-series increments across a phase (zero-delta series dropped)."""
    delta: dict[CounterKey, float] = {}
    for key, value in after.items():
        change = value - before.get(key, 0.0)
        if change:
            delta[key] = change
    return delta


def sum_by_label(
    delta: dict[CounterKey, float], family: str, label: str
) -> dict[str, int]:
    """Fold a family's delta onto one label (e.g. EDE ``code``)."""
    folded: dict[str, int] = {}
    for (name, labels), value in delta.items():
        if name != family:
            continue
        key = dict(labels).get(label, "")
        folded[key] = folded.get(key, 0) + int(value)
    return dict(sorted(folded.items()))


def percentile(samples: list[float], q: float) -> float:
    """Nearest-rank percentile over ``samples`` (deterministic)."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[rank - 1]


def build_phase_report(
    *,
    scenario: str,
    phase: str,
    latencies: list[float],
    queue_waits: list[float],
    classified: dict[str, int],
    deadline_violations: int,
    delta: dict[CounterKey, float],
    extras: dict | None = None,
) -> dict:
    """One phase's JSON-ready report row."""
    total = sum(classified.values())
    answered = classified.get("fresh", 0) + classified.get("stale", 0)

    def fraction(count: int) -> float:
        return round(count / total, 6) if total else 0.0

    responses = sum_by_label(delta, "repro_frontend_responses_total", "outcome")
    shed_reasons = sum_by_label(delta, "repro_frontend_shed_total", "reason")
    report = {
        "scenario": scenario,
        "phase": phase,
        "queries": total,
        "latency_virtual_s": {
            "p50": round(percentile(latencies, 0.50), 6),
            "p99": round(percentile(latencies, 0.99), 6),
            "p999": round(percentile(latencies, 0.999), 6),
        },
        "queue_wait_mean_s": round(
            sum(queue_waits) / len(queue_waits), 6
        ) if queue_waits else 0.0,
        "fractions": {
            "answered": fraction(answered),
            "stale": fraction(classified.get("stale", 0)),
            "refused": fraction(classified.get("refused", 0)),
            "shed": fraction(
                int(shed_reasons.get("rrl", 0))
                + int(shed_reasons.get("inflight-cap", 0))
            ),
            "servfail": fraction(classified.get("servfail", 0)),
        },
        "responses": responses,
        "shed_reasons": shed_reasons,
        "ede_mix": sum_by_label(delta, "repro_resolver_ede_total", "code"),
        "stale_served": sum_by_label(
            delta, "repro_resolver_stale_served_total", "kind"
        ),
        "breaker_transitions": sum_by_label(
            delta, "repro_breaker_transitions_total", "transition"
        ),
        "deadline_violations": deadline_violations,
    }
    if extras:
        report.update(extras)
    return report


def render_phase_table(scenarios: list[dict]) -> str:
    """The human view shared by ``bench --serve`` and ``serve --drill``."""
    header = (
        f"{'phase':<10} {'queries':>8} {'p50':>8} {'p99':>8} {'p999':>8} "
        f"{'answered':>9} {'stale':>7} {'shed':>7} {'ede mix'}"
    )
    lines = []
    for scenario in scenarios:
        lines.append(f"-- {scenario['scenario']}: {scenario['title']}")
        lines.append(header)
        for row in scenario["phases"]:
            latency = row["latency_virtual_s"]
            fractions = row["fractions"]
            ede = ",".join(
                f"{code}:{count}" for code, count in row["ede_mix"].items()
            ) or "-"
            lines.append(
                f"{row['phase']:<10} {row['queries']:>8} "
                f"{latency['p50']:>8.4f} {latency['p99']:>8.4f} "
                f"{latency['p999']:>8.4f} "
                f"{fractions['answered']:>9.1%} {fractions['stale']:>7.1%} "
                f"{fractions['shed']:>7.1%} {ede}"
            )
    return "\n".join(lines)
