"""Bursty arrival processes for the load generator.

Each client is an *interrupted Poisson process* (the standard on/off
traffic model): exponentially distributed ON periods during which
queries arrive at ``rate`` qps, separated by exponentially distributed
OFF (think: a page load's burst of lookups, then silence).  Summed over
the population this produces the bursty, heavy-tailed offered load real
resolvers see — while staying a pure function of the seeded RNG, so a
schedule replays byte-for-byte.

``mean_off = 0`` degenerates to a plain Poisson stream at ``rate``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace


@dataclass(frozen=True)
class OnOffProcess:
    """Per-client arrival process parameters."""

    #: Arrival rate while ON, queries per virtual second.
    rate: float
    #: Mean ON-period duration, seconds.
    mean_on: float = 5.0
    #: Mean OFF-period duration, seconds (0 = always on).
    mean_off: float = 0.0

    def scaled(self, factor: float) -> "OnOffProcess":
        """The same burst shape at ``factor`` times the offered load."""
        return replace(self, rate=self.rate * factor)

    @property
    def duty_cycle(self) -> float:
        if self.mean_off <= 0.0:
            return 1.0
        return self.mean_on / (self.mean_on + self.mean_off)


def client_arrivals(
    process: OnOffProcess,
    start: float,
    duration: float,
    rng: random.Random,
) -> list[float]:
    """Arrival times for one client in ``[start, start + duration)``.

    The client starts in ON or OFF with probability proportional to the
    duty cycle (a stationary start, so phase boundaries do not carry a
    synchronized everyone-ON artifact unless a scenario wants one).
    """
    if process.rate <= 0.0 or duration <= 0.0:
        return []
    end = start + duration
    times: list[float] = []
    t = start
    if process.mean_off > 0.0 and rng.random() >= process.duty_cycle:
        t += rng.expovariate(1.0 / process.mean_off)
    while t < end:
        if process.mean_off > 0.0:
            on_end = min(end, t + rng.expovariate(1.0 / process.mean_on))
        else:
            on_end = end
        while True:
            t += rng.expovariate(process.rate)
            if t >= on_end:
                break
            times.append(t)
        if process.mean_off > 0.0:
            t = on_end + rng.expovariate(1.0 / process.mean_off)
        else:
            t = on_end
    return times
