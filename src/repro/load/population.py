"""Client population and query mix for the load generator.

Clients come in *classes* — a datacenter stub resolver, a broadband
CPE, a mobile handset — differing in their network RTT to the resolver
and in how long they wait before abandoning a query.  The resolver's
own client deadline budget must sit *below* every class deadline, so a
degraded answer (stale with EDE 3/19, or SERVFAIL with an accurate
code) always beats the client's timer; the load engine verifies that
per answered query.

The query mix is the classic heavy-tailed picture of resolver traffic:
a Zipf distribution over the synthetic population's Tranco-like
ranking, optionally re-weighted onto a small *hot set* (the flash-crowd
and stampede scenarios concentrate there).
"""

from __future__ import annotations

import bisect
import itertools
import random
from dataclasses import dataclass


@dataclass(frozen=True)
class ClientClass:
    """One kind of client: RTT to the resolver and patience."""

    name: str
    #: Round-trip client <-> resolver, added to the observed latency.
    rtt: float
    #: Seconds before this client abandons the query.  Must exceed the
    #: resolver's own client deadline budget, or degraded answers would
    #: arrive at nobody.
    deadline: float
    #: Relative share of the population.
    weight: float


#: Deadlines all sit above the load engine's 1.5 s resolver budget.
DEFAULT_CLIENT_CLASSES: tuple[ClientClass, ...] = (
    ClientClass("datacenter", rtt=0.002, deadline=2.0, weight=0.2),
    ClientClass("broadband", rtt=0.020, deadline=3.0, weight=0.5),
    ClientClass("mobile", rtt=0.080, deadline=5.0, weight=0.3),
)


@dataclass(frozen=True)
class Client:
    """One simulated stub client (the frontend's RRL key is ``address``)."""

    address: str
    klass: ClientClass


def build_clients(
    count: int,
    seed: int,
    classes: tuple[ClientClass, ...] = DEFAULT_CLIENT_CLASSES,
) -> list[Client]:
    """A deterministic population of ``count`` clients (198.18/15 space)."""
    rng = random.Random(seed * 1_000_003 + 17)
    cumulative = list(itertools.accumulate(k.weight for k in classes))
    total = cumulative[-1]
    clients = []
    for index in range(count):
        draw = rng.random() * total
        klass = classes[bisect.bisect_left(cumulative, draw)]
        address = f"198.18.{(index >> 8) & 0xFF}.{index & 0xFF}"
        clients.append(Client(address=address, klass=klass))
    return clients


class ZipfMix:
    """Zipf(s) sampler over a ranked name list, with a hot-set override.

    With probability ``hot_weight`` a draw comes uniformly from ``hot``
    (the flash-crowd concentration); otherwise from the base Zipf over
    ``names`` in rank order.  Sampling is O(log n) via a precomputed
    cumulative weight table.
    """

    def __init__(
        self,
        names: list[str],
        s: float = 1.0,
        hot: tuple[str, ...] = (),
        hot_weight: float = 0.0,
    ):
        if not names and not hot:
            raise ValueError("a query mix needs at least one name")
        self.names = list(names)
        self.s = s
        self.hot = tuple(hot)
        self.hot_weight = hot_weight if self.hot else 0.0
        self._cumulative: list[float] = []
        total = 0.0
        for rank in range(1, len(self.names) + 1):
            total += 1.0 / rank**s
            self._cumulative.append(total)

    def sample(self, rng: random.Random) -> str:
        if self.hot and (
            not self.names
            or self.hot_weight >= 1.0
            or rng.random() < self.hot_weight
        ):
            return self.hot[rng.randrange(len(self.hot))]
        draw = rng.random() * self._cumulative[-1]
        return self.names[bisect.bisect_left(self._cumulative, draw)]
