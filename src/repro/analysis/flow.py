"""Interprocedural flow rules: statically enforce the serving contracts.

The stack's headline guarantees are dynamic facts — byte-identical
scans at any worker count, jitter-seed isolation in BENCH_serve.json, a
frontend that never raises — proven today by differential benchmark
runs that execute long after a violating line lands.  This module
proves the *structural* halves of those guarantees at selfcheck time,
on a whole-program call graph of ``src/repro``:

``answer-path-blocking``
    Starting from ``ResilientFrontend.handle_datagram``, no reachable
    code may call a real-blocking primitive (``time.sleep``, socket
    recv/send, ``threading`` joins/waits) — the answer path waits only
    on the virtual clock — and every reachable ``lane_wait`` /
    ``wait_virtual`` must carry a ``wake_at`` bound, so a parked lane
    can never outlive the deadline its client is owed
    (:class:`~repro.resolver.resilience.DeadlineBudget` discipline).
    The lane pool itself (``repro.net.lanes``) is the sanctioned
    scheduler boundary: its internals are exempt, its entry points are
    where the discipline is checked.

``seed-domain-taint``
    The load engine draws from two seed domains: the *schedule* seed
    fixes everything a client could observe (arrival times, qnames,
    message IDs, report fields), the *jitter* seed feeds only retry
    jitter and chaos.  This rule classifies values by injection site
    (``jitter_seed`` / ``chaos_seed`` attribute reads, and RNGs seeded
    from them) and flags any flow into a schedule-domain or
    client-visible sink (``make_query``, ``client_arrivals``,
    ``sample``, ``_Event``, ``build_phase_report``).  The sanctioned
    injection sites — ``EngineConfig``, ``ChaosPolicy``, ``Outage``,
    ``LoadConfig`` constructions — are boundaries: jitter may flow *in*
    but the resulting config object is not itself tainted.

``never-raise``
    Every explicit ``raise`` reachable from ``handle_datagram`` along a
    call path not covered by a broad ``except`` (``Exception``,
    ``BaseException``, bare, or a handler naming the raised class) is
    flagged, making the docstring contract machine-checked.

Call-graph construction reuses the engine's alias resolution
(:class:`~repro.analysis.engine.AliasResolver`) and adds: method
collection per class, ``self.`` dispatch through the class hierarchy
(a call on a base type also targets subclass overrides), attribute
typing from ``self.x = param`` assignments and dataclass field
annotations, parameter/return annotations (including quoted
``TYPE_CHECKING``-only names), and re-exported names followed across
``__init__`` modules.  Dynamic dispatch the builder cannot see
(``getattr``, callables passed as values) is out of scope — the
runtime sanitizer and the differential benchmarks remain the net
under it.

Intentional exceptions live in a committed baseline
(``flow_baseline.json``) keyed by ``rule::symbol::token`` — stable
across line drift — or behind inline ``# repro: allow[rule]`` markers;
baseline entries matching no current finding are reported as
``stale-baseline`` so the allowlist can only shrink.
"""

from __future__ import annotations

import ast
import json
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Protocol

from .findings import Finding

RULE_ANSWER_PATH_BLOCKING = "answer-path-blocking"
RULE_SEED_DOMAIN_TAINT = "seed-domain-taint"
RULE_NEVER_RAISE = "never-raise"

FLOW_RULES = (
    RULE_ANSWER_PATH_BLOCKING,
    RULE_SEED_DOMAIN_TAINT,
    RULE_NEVER_RAISE,
)

#: The frontend contract entry point: any class of this name defining
#: this method anchors the answer-path and never-raise traversals.
ENTRY_CLASS = "ResilientFrontend"
ENTRY_METHOD = "handle_datagram"

#: Modules (dotted-suffix match) whose internals are the sanctioned
#: deterministic scheduler: traversal stops at their door, and the
#: wake_at discipline is enforced at their call sites instead.
BOUNDARY_MODULE_SUFFIXES = ("net.lanes",)

#: Real-blocking stdlib entry points (resolved through aliases).
_BLOCKING_CALLS = frozenset({"time.sleep"})

#: Blocking methods on objects typed from these external constructors.
_EXTERNAL_TYPES = frozenset({
    "socket.socket",
    "threading.Thread",
    "threading.Event",
    "threading.Condition",
    "threading.Lock",
    "threading.RLock",
    "threading.Semaphore",
    "threading.BoundedSemaphore",
    "threading.Barrier",
})
_SOCKET_BLOCKING = frozenset({
    "recv", "recvfrom", "recvmsg", "recv_into", "recvfrom_into",
    "send", "sendto", "sendall", "sendmsg", "accept", "connect",
})
_THREADING_BLOCKING = frozenset({"join", "wait", "wait_for", "acquire"})

#: Predicate waits that must carry a ``wake_at`` bound on the answer path.
_WAIT_FUNCS = frozenset({"lane_wait", "wait_virtual"})

#: Attribute/parameter names whose values belong to the jitter domain.
_JITTER_SOURCES = frozenset({"jitter_seed", "chaos_seed"})

#: Sanctioned jitter-injection constructors: jitter flows in, the
#: resulting object is the jitter domain's own state, not a leak.
_TAINT_BOUNDARIES = frozenset({
    "EngineConfig", "ChaosPolicy", "Outage", "LoadConfig",
})

#: Schedule-domain / client-visible sinks, by callee name.
_TAINT_SINKS: dict[str, str] = {
    "make_query": "client-visible query construction (message IDs)",
    "client_arrivals": "schedule-domain arrival process",
    "sample": "schedule-domain query mix draw",
    "_Event": "client-visible event record",
    "build_phase_report": "client-visible report fields",
}


class _SourceFileLike(Protocol):
    display: str
    module: str
    tree: ast.Module
    path: Path


# ---------------------------------------------------------------------------
# Program model
# ---------------------------------------------------------------------------


@dataclass
class CallSite:
    """One resolved call expression inside a function body."""

    node: ast.Call
    line: int
    #: Terminal callee name (``sleep`` for ``self.clock.sleep(...)``).
    name: str
    #: Internal targets, as function qualnames.
    targets: tuple[str, ...] = ()
    #: External dotted targets (``time.sleep``, ``socket.socket.recv``).
    external: tuple[str, ...] = ()
    #: Classes this call constructs (internal qualnames or external dotted).
    constructs: tuple[str, ...] = ()
    #: The call happens under a try whose handler catches broadly.
    protected: bool = False
    #: Exception names caught by enclosing *named* handlers — a callee's
    #: ``raise X`` cannot escape through this site when ``X`` is listed.
    caught: tuple[str, ...] = ()


@dataclass
class RaiseSite:
    line: int
    exc_name: str | None  # None for a bare re-raise
    handled: bool  # an enclosing handler in the same function catches it


@dataclass
class FunctionInfo:
    qualname: str
    module: str
    cls: str | None  # enclosing class qualname, if a method
    name: str
    node: ast.AST
    path: str
    return_types: tuple[str, ...] = ()
    calls: list[CallSite] = field(default_factory=list)
    raises: list[RaiseSite] = field(default_factory=list)
    #: id(ast.Call) -> CallSite, for the taint pass.
    call_index: dict[int, CallSite] = field(default_factory=dict)

    @property
    def short(self) -> str:
        if self.cls is not None:
            return f"{self.cls.rsplit('.', 1)[-1]}.{self.name}"
        return self.name


@dataclass
class ClassInfo:
    qualname: str
    module: str
    name: str
    node: ast.ClassDef
    path: str
    base_exprs: list[ast.expr] = field(default_factory=list)
    bases: list[str] = field(default_factory=list)  # resolved class qualnames
    methods: dict[str, str] = field(default_factory=dict)  # name -> fn qualname
    #: attribute name -> candidate types (class qualnames / external dotted)
    attr_types: dict[str, set[str]] = field(default_factory=dict)


@dataclass
class _Module:
    name: str
    display: str
    aliases: "object"  # AliasResolver; typed loosely to avoid the cycle
    tree: ast.Module


class Program:
    """A whole-program view: modules, classes, functions, call edges."""

    def __init__(self, files: Iterable[_SourceFileLike]):
        from .engine import AliasResolver

        self.modules: dict[str, _Module] = {}
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        self.subclasses: dict[str, set[str]] = {}
        ordered = sorted(files, key=lambda f: f.display)
        for file in ordered:
            is_package = Path(file.path).stem == "__init__"
            aliases = AliasResolver.collect(file.tree, file.module, is_package)
            self.modules[file.module] = _Module(
                name=file.module, display=file.display,
                aliases=aliases, tree=file.tree,
            )
            self._collect_defs(file)
        self._resolve_bases()
        # Attribute typing converges in two passes: the second lets
        # ``self.clock = fabric.clock`` style chains read the attribute
        # types the first pass discovered on other classes.
        for _ in range(2):
            for cls in self.classes.values():
                self._collect_attr_types(cls)
        for fn in self.functions.values():
            fn.return_types = tuple(
                sorted(self._annotation_types(
                    getattr(fn.node, "returns", None), fn.module
                ))
            )
        for fn in self.functions.values():
            self._analyze_body(fn)

    # -- collection ----------------------------------------------------------

    def _collect_defs(self, file: _SourceFileLike) -> None:
        for stmt in file.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                q = f"{file.module}.{stmt.name}"
                self.functions[q] = FunctionInfo(
                    qualname=q, module=file.module, cls=None,
                    name=stmt.name, node=stmt, path=file.display,
                )
            elif isinstance(stmt, ast.ClassDef):
                cq = f"{file.module}.{stmt.name}"
                cls = ClassInfo(
                    qualname=cq, module=file.module, name=stmt.name,
                    node=stmt, path=file.display,
                    base_exprs=list(stmt.bases),
                )
                for item in stmt.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        mq = f"{cq}.{item.name}"
                        self.functions[mq] = FunctionInfo(
                            qualname=mq, module=file.module, cls=cq,
                            name=item.name, node=item, path=file.display,
                        )
                        cls.methods[item.name] = mq
                self.classes[cq] = cls

    def _resolve_bases(self) -> None:
        for cls in self.classes.values():
            aliases = self.modules[cls.module].aliases
            for expr in cls.base_exprs:
                target = None
                if isinstance(expr, ast.Name):
                    local = f"{cls.module}.{expr.id}"
                    if local in self.classes:
                        target = local
                if target is None:
                    dotted = aliases.dotted(expr)
                    if dotted is not None:
                        resolved = self.resolve(dotted)
                        if isinstance(resolved, ClassInfo):
                            target = resolved.qualname
                if target is not None:
                    cls.bases.append(target)
        for cls in self.classes.values():
            for base in cls.bases:
                self.subclasses.setdefault(base, set()).add(cls.qualname)

    def _collect_attr_types(self, cls: ClassInfo) -> None:
        """Instance-attribute types: dataclass field annotations in the
        class body, plus ``self.x = <inferable>`` assignments in methods."""
        for stmt in cls.node.body:
            if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                types = self._annotation_types(stmt.annotation, cls.module)
                if types:
                    cls.attr_types.setdefault(stmt.target.id, set()).update(types)
        for method_q in cls.methods.values():
            fn = self.functions[method_q]
            env = self._param_env(fn)

            def self_attr(target: ast.expr) -> str | None:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    return target.attr
                return None

            def walk(stmts) -> None:
                for stmt in stmts:
                    if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                        target = stmt.targets[0]
                        attr = self_attr(target)
                        types = self._infer(stmt.value, env, fn)
                        if attr is not None and types:
                            cls.attr_types.setdefault(attr, set()).update(types)
                        elif isinstance(target, ast.Name) and types:
                            env.setdefault(target.id, set()).update(types)
                    elif isinstance(stmt, ast.AnnAssign):
                        types = self._annotation_types(stmt.annotation, fn.module)
                        if stmt.value is not None:
                            types = types | self._infer(stmt.value, env, fn)
                        attr = self_attr(stmt.target)
                        if attr is not None and types:
                            cls.attr_types.setdefault(attr, set()).update(types)
                        elif isinstance(stmt.target, ast.Name) and types:
                            env.setdefault(stmt.target.id, set()).update(types)
                    for field_name in ("body", "orelse", "finalbody"):
                        walk(getattr(stmt, field_name, ()) or ())
                    for handler in getattr(stmt, "handlers", ()) or ():
                        walk(handler.body)

            walk(getattr(fn.node, "body", ()))

    # -- symbol resolution ---------------------------------------------------

    def resolve(self, dotted: str, _seen: frozenset = frozenset()):
        """A dotted name to its FunctionInfo/ClassInfo, following re-exports."""
        if dotted in _seen:
            return None
        if dotted in self.functions:
            return self.functions[dotted]
        if dotted in self.classes:
            return self.classes[dotted]
        head, _, attr = dotted.rpartition(".")
        if head in self.classes:
            method = self.method_on(head, attr)
            if method is not None:
                return method
        # Re-export: find the longest module prefix, then follow the
        # alias its ``__init__``/module binds for the next component.
        parts = dotted.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            prefix = ".".join(parts[:cut])
            module = self.modules.get(prefix)
            if module is None:
                continue
            target = module.aliases.names.get(parts[cut])
            if target is None:
                return None
            rest = ".".join(parts[cut + 1:])
            renamed = f"{target}.{rest}" if rest else target
            return self.resolve(renamed, _seen | {dotted})
        return None

    def method_on(self, class_q: str, name: str, _seen: frozenset = frozenset()):
        """MRO-ish lookup: the class, then its bases, depth-first."""
        if class_q in _seen:
            return None
        cls = self.classes.get(class_q)
        if cls is None:
            return None
        if name in cls.methods:
            return self.functions[cls.methods[name]]
        for base in cls.bases:
            found = self.method_on(base, name, _seen | {class_q})
            if found is not None:
                return found
        return None

    def _all_subclasses(self, class_q: str) -> set[str]:
        out: set[str] = set()
        frontier = [class_q]
        while frontier:
            current = frontier.pop()
            for sub in self.subclasses.get(current, ()):
                if sub not in out:
                    out.add(sub)
                    frontier.append(sub)
        return out

    def dispatch(self, class_q: str, name: str) -> set[str]:
        """Call targets for ``obj.name()`` where obj is statically ``class_q``:
        the inherited implementation plus every subclass override."""
        targets: set[str] = set()
        base = self.method_on(class_q, name)
        if base is not None:
            targets.add(base.qualname)
        for sub in self._all_subclasses(class_q):
            cls = self.classes[sub]
            if name in cls.methods:
                targets.add(cls.methods[name])
        return targets

    # -- annotations & type inference ---------------------------------------

    def _annotation_types(self, ann: ast.expr | None, module: str) -> set[str]:
        if ann is None:
            return set()
        if isinstance(ann, ast.Constant):
            if not isinstance(ann.value, str):
                return set()
            try:
                ann = ast.parse(ann.value, mode="eval").body
            except SyntaxError:
                return set()
        if isinstance(ann, ast.BinOp) and isinstance(ann.op, ast.BitOr):
            return self._annotation_types(ann.left, module) | self._annotation_types(
                ann.right, module
            )
        if isinstance(ann, ast.Subscript):
            value = ann.value
            name = value.id if isinstance(value, ast.Name) else getattr(value, "attr", "")
            if name in ("Optional", "Union"):
                inner = ann.slice
                elements = inner.elts if isinstance(inner, ast.Tuple) else [inner]
                out: set[str] = set()
                for element in elements:
                    out |= self._annotation_types(element, module)
                return out
            return set()
        if isinstance(ann, (ast.Name, ast.Attribute)):
            return self._class_types_for(ann, module)
        return set()

    def _class_types_for(self, expr: ast.expr, module: str) -> set[str]:
        """Resolve a Name/Attribute to class types (internal or external)."""
        if isinstance(expr, ast.Name):
            local = f"{module}.{expr.id}"
            if local in self.classes:
                return {local}
        aliases = self.modules[module].aliases
        dotted = aliases.dotted(expr)
        if dotted is None:
            return set()
        if dotted in _EXTERNAL_TYPES:
            return {dotted}
        resolved = self.resolve(dotted)
        if isinstance(resolved, ClassInfo):
            return {resolved.qualname}
        return set()

    def _param_env(self, fn: FunctionInfo) -> dict[str, set[str]]:
        env: dict[str, set[str]] = {}
        node = fn.node
        args = getattr(node, "args", None)
        if args is None:
            return env
        every = list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        for arg in every:
            types = self._annotation_types(arg.annotation, fn.module)
            if types:
                env[arg.arg] = types
        if fn.cls is not None and every and every[0].arg in ("self", "cls"):
            env[every[0].arg] = {fn.cls}
        return env

    def _infer(
        self, expr: ast.expr, env: dict[str, set[str]], fn: FunctionInfo
    ) -> set[str]:
        """Candidate instance types of an expression (best effort)."""
        if isinstance(expr, ast.Name):
            return set(env.get(expr.id, ()))
        if isinstance(expr, ast.Attribute):
            out: set[str] = set()
            for base_type in self._infer(expr.value, env, fn):
                cls = self.classes.get(base_type)
                if cls is not None:
                    out |= cls.attr_types.get(expr.attr, set())
            return out
        if isinstance(expr, ast.Call):
            targets, _, constructs = self._call_targets(expr, env, fn)
            out = set(constructs)
            for target in targets:
                out.update(self.functions[target].return_types)
            return out
        if isinstance(expr, ast.BoolOp):
            out = set()
            for value in expr.values:
                out |= self._infer(value, env, fn)
            return out
        if isinstance(expr, ast.IfExp):
            return self._infer(expr.body, env, fn) | self._infer(
                expr.orelse, env, fn
            )
        return set()

    def _build_env(self, fn: FunctionInfo) -> dict[str, set[str]]:
        """Parameter types plus in-order local assignment inference."""
        env = self._param_env(fn)

        def walk(stmts) -> None:
            for stmt in stmts:
                if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                    target = stmt.targets[0]
                    if isinstance(target, ast.Name):
                        types = self._infer(stmt.value, env, fn)
                        if types:
                            env.setdefault(target.id, set()).update(types)
                elif isinstance(stmt, ast.AnnAssign) and isinstance(
                    stmt.target, ast.Name
                ):
                    types = self._annotation_types(stmt.annotation, fn.module)
                    if types:
                        env.setdefault(stmt.target.id, set()).update(types)
                for attr in ("body", "orelse", "finalbody"):
                    walk(getattr(stmt, attr, ()) or ())
                for handler in getattr(stmt, "handlers", ()) or ():
                    walk(handler.body)
        walk(getattr(fn.node, "body", ()))
        return env

    # -- call resolution -----------------------------------------------------

    def _call_targets(
        self, call: ast.Call, env: dict[str, set[str]], fn: FunctionInfo
    ) -> tuple[set[str], set[str], set[str]]:
        """(internal targets, external dotted, constructed types)."""
        targets: set[str] = set()
        external: set[str] = set()
        constructs: set[str] = set()
        aliases = self.modules[fn.module].aliases
        func = call.func

        def note(resolved, dotted: str | None) -> None:
            if isinstance(resolved, FunctionInfo):
                targets.add(resolved.qualname)
            elif isinstance(resolved, ClassInfo):
                constructs.add(resolved.qualname)
                init = self.method_on(resolved.qualname, "__init__")
                if init is not None:
                    targets.add(init.qualname)
            elif dotted is not None:
                if dotted in _EXTERNAL_TYPES:
                    constructs.add(dotted)
                else:
                    external.add(dotted)

        if isinstance(func, ast.Name):
            local = f"{fn.module}.{func.id}"
            if local in self.functions:
                targets.add(local)
            elif local in self.classes:
                note(self.classes[local], None)
            else:
                dotted = aliases.dotted(func)
                if dotted is not None:
                    note(self.resolve(dotted), dotted)
        elif isinstance(func, ast.Attribute):
            dotted = aliases.dotted(func)
            if dotted is not None:
                note(self.resolve(dotted), dotted)
            else:
                for receiver in self._infer(func.value, env, fn):
                    if receiver in self.classes:
                        targets |= self.dispatch(receiver, func.attr)
                    else:  # external type, e.g. socket.socket
                        external.add(f"{receiver}.{func.attr}")
        return targets, external, constructs

    # -- body analysis -------------------------------------------------------

    def _analyze_body(self, fn: FunctionInfo) -> None:
        env = self._build_env(fn)

        def handler_names(handler: ast.ExceptHandler) -> set[str] | None:
            """None means catch-everything."""
            if handler.type is None:
                return None
            types = (
                handler.type.elts
                if isinstance(handler.type, ast.Tuple)
                else [handler.type]
            )
            names: set[str] = set()
            for t in types:
                name = t.id if isinstance(t, ast.Name) else getattr(t, "attr", "")
                if name in ("Exception", "BaseException"):
                    return None
                names.add(name)
            return names

        def visit(node: ast.AST, frames: tuple) -> None:
            if isinstance(node, ast.Call):
                targets, external, constructs = self._call_targets(node, env, fn)
                name = (
                    node.func.attr
                    if isinstance(node.func, ast.Attribute)
                    else node.func.id if isinstance(node.func, ast.Name) else ""
                )
                named = [frame for frame in frames if frame is not None]
                site = CallSite(
                    node=node, line=node.lineno, name=name,
                    targets=tuple(sorted(targets)),
                    external=tuple(sorted(external)),
                    constructs=tuple(sorted(constructs)),
                    protected=any(frame is None for frame in frames),
                    caught=tuple(sorted(frozenset().union(*named))) if named else (),
                )
                fn.calls.append(site)
                fn.call_index[id(node)] = site
            elif isinstance(node, ast.Raise):
                exc = node.exc
                if isinstance(exc, ast.Call):
                    exc = exc.func
                exc_name = (
                    exc.id if isinstance(exc, ast.Name)
                    else exc.attr if isinstance(exc, ast.Attribute)
                    else None
                )
                handled = any(
                    frame is None or (exc_name is not None and exc_name in frame)
                    for frame in frames
                )
                fn.raises.append(
                    RaiseSite(line=node.lineno, exc_name=exc_name, handled=handled)
                )
            if isinstance(node, ast.Try):
                caught = [handler_names(h) for h in node.handlers]
                # A broad handler protects the try body only; handlers,
                # else and finally run outside its cover.
                body_frames = frames + tuple(
                    (None,) if any(c is None for c in caught)
                    else (frozenset().union(*caught),) if caught else ()
                )
                for child in node.body:
                    visit(child, body_frames)
                for handler in node.handlers:
                    for child in handler.body:
                        visit(child, frames)
                for child in list(node.orelse) + list(node.finalbody):
                    visit(child, frames)
                return
            for child in ast.iter_child_nodes(node):
                visit(child, frames)

        for stmt in getattr(fn.node, "body", ()):
            visit(stmt, ())


# ---------------------------------------------------------------------------
# Reachability
# ---------------------------------------------------------------------------


def _is_boundary(module: str) -> bool:
    return any(module.endswith(suffix) for suffix in BOUNDARY_MODULE_SUFFIXES)


def find_entries(program: Program) -> list[FunctionInfo]:
    return sorted(
        (
            fn
            for fn in program.functions.values()
            if fn.cls is not None
            and fn.cls.rsplit(".", 1)[-1] == ENTRY_CLASS
            and fn.name == ENTRY_METHOD
        ),
        key=lambda fn: fn.qualname,
    )


def _reachable(
    program: Program,
    entries: list[FunctionInfo],
    *,
    unprotected_only: bool = False,
    exc_name: str | None = None,
) -> dict[str, str | None]:
    """BFS over call edges; returns fn qualname -> parent qualname.

    With ``exc_name``, call sites whose enclosing named handlers catch
    that exception also block the edge — the escape analysis for
    ``raise X`` must not pass through a ``try: ... except X:`` caller.
    """
    parents: dict[str, str | None] = {fn.qualname: None for fn in entries}
    queue = deque(fn.qualname for fn in entries)
    while queue:
        current = queue.popleft()
        fn = program.functions[current]
        if _is_boundary(fn.module):
            continue  # the scheduler boundary: do not look inside
        for site in fn.calls:
            if unprotected_only and site.protected:
                continue
            if exc_name is not None and exc_name in site.caught:
                continue
            for target in site.targets:
                if target not in parents:
                    parents[target] = current
                    queue.append(target)
    return parents


def _chain(program: Program, parents: dict[str, str | None], q: str) -> str:
    hops = []
    cursor: str | None = q
    while cursor is not None:
        hops.append(program.functions[cursor].short)
        cursor = parents[cursor]
    return " <- ".join(hops) if len(hops) > 1 else hops[0]


# ---------------------------------------------------------------------------
# Rule: answer-path-blocking
# ---------------------------------------------------------------------------


def _blocking_external(dotted: str) -> bool:
    if dotted in _BLOCKING_CALLS:
        return True
    head, _, attr = dotted.rpartition(".")
    if head == "socket.socket" and attr in _SOCKET_BLOCKING:
        return True
    if head in _EXTERNAL_TYPES and head.startswith("threading.") and (
        attr in _THREADING_BLOCKING
    ):
        return True
    # Module-level blocking entry points reached without a constructor,
    # e.g. ``socket.create_connection``.
    if dotted.startswith("socket.") and attr in _SOCKET_BLOCKING | {
        "create_connection"
    }:
        return True
    return False


def _wait_is_bounded(call: ast.Call) -> bool:
    """A lane_wait/wait_virtual carries a non-None wake-up bound."""
    for kw in call.keywords:
        if kw.arg == "wake_at":
            return not (
                isinstance(kw.value, ast.Constant) and kw.value.value is None
            )
    for arg in call.args[1:]:
        if not (isinstance(arg, ast.Constant) and arg.value is None):
            return True
    return False


def check_answer_path(program: Program) -> Iterator[Finding]:
    entries = find_entries(program)
    if not entries:
        return
    parents = _reachable(program, entries)
    for q in sorted(parents):
        fn = program.functions[q]
        if _is_boundary(fn.module):
            continue
        chain = _chain(program, parents, q)
        for site in fn.calls:
            for dotted in site.external:
                if _blocking_external(dotted):
                    yield Finding(
                        rule=RULE_ANSWER_PATH_BLOCKING,
                        message=(
                            f"real-blocking call `{dotted}` is reachable from"
                            f" {ENTRY_CLASS}.{ENTRY_METHOD} (via {chain});"
                            " the answer path may only wait on the virtual"
                            " clock"
                        ),
                        path=fn.path,
                        line=site.line,
                        key=f"{RULE_ANSWER_PATH_BLOCKING}::{q}::{dotted}",
                    )
            if site.name in _WAIT_FUNCS and not _wait_is_bounded(site.node):
                yield Finding(
                    rule=RULE_ANSWER_PATH_BLOCKING,
                    message=(
                        f"`{site.name}` without a wake_at bound is reachable"
                        f" from {ENTRY_CLASS}.{ENTRY_METHOD} (via {chain});"
                        " a parked lane could outlive its client's deadline —"
                        " pass wake_at= from the DeadlineBudget"
                    ),
                    path=fn.path,
                    line=site.line,
                    key=f"{RULE_ANSWER_PATH_BLOCKING}::{q}::unbounded:{site.name}",
                )


# ---------------------------------------------------------------------------
# Rule: never-raise
# ---------------------------------------------------------------------------


def check_never_raise(program: Program) -> Iterator[Finding]:
    entries = find_entries(program)
    if not entries:
        return
    # The broad-only reachability bounds the candidate set; each raised
    # exception name then gets its own pass where call sites under a
    # handler *naming* that exception also block the edge, so a
    # parse-or-refuse callee (`try: walk() except RefusedError:`) is
    # credited without demanding a bare `except Exception`.
    parents = _reachable(program, entries, unprotected_only=True)
    named_parents: dict[str | None, dict[str, str | None]] = {None: parents}

    def parents_for(exc_name: str | None) -> dict[str, str | None]:
        if exc_name not in named_parents:
            named_parents[exc_name] = _reachable(
                program, entries, unprotected_only=True, exc_name=exc_name
            )
        return named_parents[exc_name]

    for q in sorted(parents):
        fn = program.functions[q]
        for site in fn.raises:
            if site.handled:
                continue
            escape_parents = parents_for(site.exc_name)
            if q not in escape_parents:
                continue
            chain = _chain(program, escape_parents, q)
            label = site.exc_name or "bare raise"
            yield Finding(
                rule=RULE_NEVER_RAISE,
                message=(
                    f"`raise {label}` can escape"
                    f" {ENTRY_CLASS}.{ENTRY_METHOD} (via {chain}); the"
                    " frontend contract is that handle_datagram never"
                    " raises — catch it inside the frontend or record a"
                    " baselined justification"
                ),
                path=fn.path,
                line=site.line,
                key=f"{RULE_NEVER_RAISE}::{q}::raise:{site.exc_name or 'bare'}",
            )


# ---------------------------------------------------------------------------
# Rule: seed-domain-taint
# ---------------------------------------------------------------------------


@dataclass
class _TaintResult:
    returns_tainted: bool = False
    tainted_attrs: dict[str, set[str]] = field(default_factory=dict)
    findings: list[Finding] = field(default_factory=list)


def _taint_function(
    fn: FunctionInfo,
    summaries: set[str],
    attr_taint: dict[str, set[str]],
    collect: bool,
) -> _TaintResult:
    result = _TaintResult()
    tainted: set[str] = set()
    node = fn.node
    args = getattr(node, "args", None)
    if args is not None:
        for arg in (
            list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        ):
            if arg.arg in _JITTER_SOURCES:
                tainted.add(arg.arg)

    def expr_tainted(expr: ast.expr) -> bool:
        if isinstance(expr, ast.Name):
            return expr.id in tainted or expr.id in _JITTER_SOURCES
        if isinstance(expr, ast.Attribute):
            if expr.attr in _JITTER_SOURCES:
                return True
            if (
                isinstance(expr.value, ast.Name)
                and expr.value.id == "self"
                and fn.cls is not None
                and expr.attr in attr_taint.get(fn.cls, ())
            ):
                return True
            return expr_tainted(expr.value)
        if isinstance(expr, ast.Call):
            site = fn.call_index.get(id(expr))
            name = site.name if site is not None else ""
            if name in _TAINT_BOUNDARIES:
                return False
            if site is not None and any(t in summaries for t in site.targets):
                return True
            if isinstance(expr.func, ast.Attribute) and expr_tainted(
                expr.func.value
            ):
                return True  # a draw from a jitter-domain RNG
            return any(expr_tainted(a) for a in expr.args) or any(
                expr_tainted(kw.value) for kw in expr.keywords
            )
        if isinstance(expr, ast.BinOp):
            return expr_tainted(expr.left) or expr_tainted(expr.right)
        if isinstance(expr, ast.UnaryOp):
            return expr_tainted(expr.operand)
        if isinstance(expr, ast.BoolOp):
            return any(expr_tainted(v) for v in expr.values)
        if isinstance(expr, ast.IfExp):
            return expr_tainted(expr.body) or expr_tainted(expr.orelse)
        if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
            return any(expr_tainted(e) for e in expr.elts)
        if isinstance(expr, ast.Subscript):
            return expr_tainted(expr.value)
        if isinstance(expr, ast.Starred):
            return expr_tainted(expr.value)
        return False

    def mark_target(target: ast.expr) -> None:
        if isinstance(target, ast.Name):
            tainted.add(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                mark_target(element)
        elif (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
            and fn.cls is not None
        ):
            result.tainted_attrs.setdefault(fn.cls, set()).add(target.attr)

    def visit(stmt: ast.AST) -> None:
        if isinstance(stmt, ast.Assign):
            if expr_tainted(stmt.value):
                for target in stmt.targets:
                    mark_target(target)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None and expr_tainted(stmt.value):
                mark_target(stmt.target)
        elif isinstance(stmt, ast.AugAssign):
            if expr_tainted(stmt.value):
                mark_target(stmt.target)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None and expr_tainted(stmt.value):
                result.returns_tainted = True
        for child in ast.iter_child_nodes(stmt):
            visit(child)

    for stmt in getattr(node, "body", ()):
        visit(stmt)

    if collect:
        for site in fn.calls:
            desc = _TAINT_SINKS.get(site.name)
            if desc is None:
                continue
            call = site.node
            flows = [
                a for a in list(call.args) + [kw.value for kw in call.keywords]
                if expr_tainted(a)
            ]
            if flows:
                result.findings.append(
                    Finding(
                        rule=RULE_SEED_DOMAIN_TAINT,
                        message=(
                            f"jitter-domain value flows into {desc} via"
                            f" `{site.name}(...)` in {fn.short}; only the"
                            " schedule seed may shape client-visible or"
                            " schedule-domain state (jitter belongs to"
                            " retry/chaos RNGs alone)"
                        ),
                        path=fn.path,
                        line=site.line,
                        key=(
                            f"{RULE_SEED_DOMAIN_TAINT}::{fn.qualname}"
                            f"::sink:{site.name}"
                        ),
                    )
                )
    return result


def check_seed_domains(program: Program) -> Iterator[Finding]:
    summaries: set[str] = set()
    attr_taint: dict[str, set[str]] = {}
    for _ in range(10):
        changed = False
        for q in sorted(program.functions):
            fn = program.functions[q]
            partial = _taint_function(fn, summaries, attr_taint, collect=False)
            if partial.returns_tainted and q not in summaries:
                summaries.add(q)
                changed = True
            for cls, attrs in partial.tainted_attrs.items():
                known = attr_taint.setdefault(cls, set())
                if not attrs <= known:
                    known |= attrs
                    changed = True
        if not changed:
            break
    for q in sorted(program.functions):
        fn = program.functions[q]
        yield from _taint_function(fn, summaries, attr_taint, collect=True).findings


# ---------------------------------------------------------------------------
# Baseline + entry point
# ---------------------------------------------------------------------------


def load_baseline(path: Path) -> dict[str, str]:
    """``key -> reason`` from a committed baseline file (missing: empty)."""
    path = Path(path)
    if not path.exists():
        return {}
    payload = json.loads(path.read_text(encoding="utf-8"))
    entries = payload.get("entries", [])
    return {entry["key"]: entry.get("reason", "") for entry in entries}


_RULE_CHECKS = {
    RULE_ANSWER_PATH_BLOCKING: check_answer_path,
    RULE_SEED_DOMAIN_TAINT: check_seed_domains,
    RULE_NEVER_RAISE: check_never_raise,
}


def analyze_program(
    files: Iterable[_SourceFileLike],
    rules: Iterable[str] = FLOW_RULES,
) -> list[Finding]:
    """Build the call graph once and run the requested flow rules."""
    program = Program(files)
    findings: list[Finding] = []
    for rule in rules:
        findings.extend(_RULE_CHECKS[rule](program))
    return sorted(findings, key=lambda f: (f.path, f.line, f.rule, f.message))
