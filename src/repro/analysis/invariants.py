"""Protocol-invariant rules: the data tables must agree with the registries.

The reproduction encodes a lot of protocol knowledge as plain data —
vendor EDE policies, the paper's Table 4 transcription, the 63 testbed
cases, the rdata parser registry.  A typo in any of them (an INFO-CODE
that RFC 8914 never assigned, a testbed label with no subdomain, an
``RdataType.NSEC3PARAMS`` that does not exist) would silently skew
results instead of failing loudly.  These rules cross-check the tables:

``ede-registry``
    Every integer INFO-CODE literal inside ``reason_codes=`` /
    ``event_codes=`` / ``policy_codes=`` tables and ``_row(...)``
    expected-matrix rows must resolve in the
    :class:`repro.dns.ede.EdeCode` registry.
``enum-member``
    Every ``EdeCode.X`` / ``RdataType.X`` / ``FailureReason.X`` /
    ``ResolutionEvent.X`` / ``Rcode.X`` attribute reference must name a
    defined member (an undefined one only explodes when that line runs).
``testbed-matrix``
    Every case in the transcribed Table 4 maps to a defined testbed
    subdomain and vice versa (63 cases), names only known profiles, and
    every expected INFO-CODE is *reachable* — some branch of that
    profile's policy can actually emit it.
``rdata-registry``
    Every parser in the rdata registry is keyed by a registered
    :class:`~repro.dns.types.RdataType` and parses into a class that
    declares the same type.
``resilience-codes``
    Every EDE INFO-CODE the resilience layer can emit (Stale Answer 3,
    Prohibited 18, Stale NXDOMAIN Answer 19) is assigned in the RFC
    8914 registry *and* reachable from at least one vendor profile's
    policy — a degraded answer must never carry a code no modeled
    resolver could produce.
``obs-registry``
    Every literal metric name passed to ``counter()`` / ``gauge()`` /
    ``histogram()`` is declared in :data:`repro.obs.registry.METRICS`
    with the same instrument kind, every declared spec is well-formed
    (Prometheus-legal name and label names), and every declared metric
    is actually requested somewhere in the package — documentation and
    emission cannot drift apart in either direction.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .findings import Finding

RULE_EDE_REGISTRY = "ede-registry"
RULE_ENUM_MEMBER = "enum-member"
RULE_TESTBED_MATRIX = "testbed-matrix"
RULE_RDATA_REGISTRY = "rdata-registry"
RULE_RESILIENCE_CODES = "resilience-codes"
RULE_OBS_REGISTRY = "obs-registry"

INVARIANT_RULES = (
    RULE_EDE_REGISTRY,
    RULE_ENUM_MEMBER,
    RULE_TESTBED_MATRIX,
    RULE_RDATA_REGISTRY,
    RULE_RESILIENCE_CODES,
    RULE_OBS_REGISTRY,
)

#: Keyword arguments whose values are tables of EDE INFO-CODEs.
_EDE_TABLE_KWARGS = frozenset({"reason_codes", "event_codes", "policy_codes"})

#: Call names whose integer arguments are EDE INFO-CODEs (the Table 4
#: transcription rows in testbed/expected.py).
_EDE_ROW_CALLS = frozenset({"_row"})


def _registries():
    """The enum registries, resolved lazily to keep import cycles away."""
    from ..dns.ede import EdeCode
    from ..dns.rcode import Rcode
    from ..dns.types import Opcode, RdataClass, RdataType
    from ..dnssec.trace import FailureReason, ResolutionEvent
    from ..obs.trace import TraceEventKind

    return {
        "EdeCode": EdeCode,
        "RdataType": RdataType,
        "RdataClass": RdataClass,
        "Opcode": Opcode,
        "Rcode": Rcode,
        "FailureReason": FailureReason,
        "ResolutionEvent": ResolutionEvent,
        "TraceEventKind": TraceEventKind,
    }


def _enum_bindings(tree: ast.AST, registries: dict) -> dict[str, object]:
    """Local names bound to registry enums via ``from ... import`` (with aliases)."""
    bindings: dict[str, object] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom):
            for alias in node.names:
                if alias.name in registries:
                    bindings[alias.asname or alias.name] = registries[alias.name]
    return bindings


def check_enum_members(tree: ast.AST, path: str) -> Iterator[Finding]:
    """Flag ``Enum.MEMBER`` references that name no defined member."""
    registries = _registries()
    bindings = _enum_bindings(tree, registries)
    if not bindings:
        return
    for node in ast.walk(tree):
        if not (isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name)):
            continue
        enum_cls = bindings.get(node.value.id)
        if enum_cls is None or not node.attr.isupper():
            continue
        if node.attr not in enum_cls.__members__:  # type: ignore[attr-defined]
            yield Finding(
                rule=RULE_ENUM_MEMBER,
                message=(
                    f"`{node.value.id}.{node.attr}` names no member of"
                    f" {enum_cls.__name__}"  # type: ignore[attr-defined]
                ),
                path=path,
                line=node.lineno,
            )


def check_ede_literals(tree: ast.AST, path: str) -> Iterator[Finding]:
    """Flag INFO-CODE literals that the RFC 8914 registry does not assign."""
    from ..dns.ede import EdeCode

    def bad_codes(root: ast.AST) -> Iterator[tuple[int, int]]:
        for sub in ast.walk(root):
            if isinstance(sub, ast.Constant) and type(sub.value) is int:
                try:
                    EdeCode(sub.value)
                except ValueError:
                    yield sub.value, sub.lineno

    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        tables = [
            kw.value for kw in node.keywords if kw.arg in _EDE_TABLE_KWARGS
        ]
        if (
            isinstance(node.func, ast.Name)
            and node.func.id in _EDE_ROW_CALLS
        ):
            tables.extend(node.args)
            tables.extend(kw.value for kw in node.keywords)
        for table in tables:
            for value, lineno in bad_codes(table):
                yield Finding(
                    rule=RULE_EDE_REGISTRY,
                    message=(
                        f"EDE INFO-CODE {value} is not assigned in the"
                        " RFC 8914 registry (dns/ede.py)"
                    ),
                    path=path,
                    line=lineno,
                )


#: Instrument-constructor method names whose literal first argument is
#: a metric name from the obs registry.
_METRIC_METHODS = frozenset({"counter", "gauge", "histogram"})


def _literal_metric_calls(tree: ast.AST) -> Iterator[tuple[str, str, int]]:
    """(name, kind, line) for each ``.counter("lit")``-style call."""
    for node in ast.walk(tree):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _METRIC_METHODS
            and node.args
            and isinstance(node.args[0], ast.Constant)
            and isinstance(node.args[0].value, str)
        ):
            continue
        yield node.args[0].value, node.func.attr, node.lineno


def check_obs_registry_calls(tree: ast.AST, path: str) -> Iterator[Finding]:
    """Literal instrument names must be documented with the right kind."""
    from ..obs.registry import METRICS

    for name, kind, lineno in _literal_metric_calls(tree):
        spec = METRICS.get(name)
        if spec is None:
            yield Finding(
                rule=RULE_OBS_REGISTRY,
                message=(
                    f"metric {name!r} is not declared in"
                    " repro.obs.registry.METRICS; document it there first"
                ),
                path=path,
                line=lineno,
            )
        elif spec.kind != kind:
            yield Finding(
                rule=RULE_OBS_REGISTRY,
                message=(
                    f"metric {name!r} is declared as a {spec.kind} but"
                    f" requested via .{kind}()"
                ),
                path=path,
                line=lineno,
            )


def check_obs_metrics() -> Iterator[Finding]:
    """METRICS specs are well-formed and every declared name is emitted."""
    from ..obs.metrics import _LABEL_RE, _NAME_RE
    from ..obs.registry import METRICS

    path = "repro/obs/registry.py"

    def finding(message: str) -> Finding:
        return Finding(rule=RULE_OBS_REGISTRY, message=message, path=path)

    for name, spec in METRICS.items():
        if not _NAME_RE.match(name):
            yield finding(f"metric name {name!r} is not Prometheus-legal")
        if spec.kind not in ("counter", "gauge", "histogram"):
            yield finding(f"metric {name!r} has unknown kind {spec.kind!r}")
        for label in spec.labels:
            if not _LABEL_RE.match(label):
                yield finding(
                    f"metric {name!r} declares illegal label name {label!r}"
                )

    from .engine import iter_python_files, repo_source_root

    used: set[str] = set()
    for source_path in iter_python_files(repo_source_root()):
        try:
            tree = ast.parse(source_path.read_text(encoding="utf-8"))
        except SyntaxError:
            continue  # the parse-error rule reports this
        for name, _kind, _line in _literal_metric_calls(tree):
            used.add(name)
    for name in METRICS:
        if name not in used:
            yield finding(
                f"metric {name!r} is documented but no code requests it;"
                " remove the spec or wire the emission"
            )


# ---------------------------------------------------------------------------
# Table rules: cross-module consistency, checked on the imported tables.
# ---------------------------------------------------------------------------

def _reachable_codes(profile) -> set[int]:
    """Every INFO-CODE some branch of ``profile``'s policy can emit."""
    from ..dns.ede import EdeCode

    codes: set[int] = set()
    for tup in profile.policy.reason_codes.values():
        codes.update(tup)
    for tup in profile.policy.event_codes.values():
        codes.update(tup)
    codes.update(profile.policy.policy_codes)
    if profile.policy.emit_no_reachable_authority:
        codes.add(int(EdeCode.NO_REACHABLE_AUTHORITY))
    return codes


def check_testbed_matrix() -> Iterator[Finding]:
    """Table 4 transcription ↔ subdomains ↔ profile policies."""
    from ..dns.ede import EdeCode
    from ..resolver.profiles import PROFILES_BY_NAME
    from ..testbed.expected import EXPECTED_TABLE4, PROFILE_ORDER
    from ..testbed.subdomains import CASES_BY_LABEL

    path = "repro/testbed/expected.py"

    def finding(message: str) -> Finding:
        return Finding(rule=RULE_TESTBED_MATRIX, message=message, path=path)

    for label in EXPECTED_TABLE4:
        if label not in CASES_BY_LABEL:
            yield finding(
                f"expected-matrix case {label!r} maps to no testbed subdomain"
            )
    for label in CASES_BY_LABEL:
        if label not in EXPECTED_TABLE4:
            yield finding(
                f"testbed subdomain {label!r} has no expected-matrix row"
            )

    unknown_profiles = set(PROFILE_ORDER) - set(PROFILES_BY_NAME)
    for name in sorted(unknown_profiles):
        yield finding(f"PROFILE_ORDER names unknown profile {name!r}")

    reachable = {
        name: _reachable_codes(profile)
        for name, profile in PROFILES_BY_NAME.items()
    }
    for label, row in EXPECTED_TABLE4.items():
        for name in row:
            if name not in PROFILE_ORDER:
                yield finding(f"case {label!r} has a column for unknown profile {name!r}")
        for name in PROFILE_ORDER:
            for code in row.get(name, ()):
                try:
                    EdeCode(code)
                except ValueError:
                    yield finding(
                        f"case {label!r}/{name}: INFO-CODE {code} is not in"
                        " the RFC 8914 registry"
                    )
                    continue
                if name in reachable and code not in reachable[name]:
                    yield finding(
                        f"case {label!r} expects EDE {code} from {name}, but no"
                        " branch of that profile's policy can emit it"
                    )


def check_rdata_registry() -> Iterator[Finding]:
    """Every registered rdata parser is keyed by a registered RdataType."""
    from ..dns.rdata import Rdata
    from ..dns.types import RdataType

    path = "repro/dns/rdata.py"
    for rdtype, parser in Rdata._parsers.items():
        if not isinstance(rdtype, RdataType):
            yield Finding(
                rule=RULE_RDATA_REGISTRY,
                message=(
                    f"rdata parser registered under unregistered type {rdtype!r};"
                    " add it to the RdataType registry first"
                ),
                path=path,
            )
            continue
        owner = getattr(parser, "__self__", None)
        declared = getattr(owner, "rdtype", rdtype) if owner is not None else rdtype
        if isinstance(declared, RdataType) and declared != rdtype:
            yield Finding(
                rule=RULE_RDATA_REGISTRY,
                message=(
                    f"parser for {rdtype} is {getattr(owner, '__name__', owner)!r}"
                    f" which declares rdtype {declared}"
                ),
                path=path,
            )


def check_resilience_codes() -> Iterator[Finding]:
    """Resilience-layer EDE codes: RFC 8914-assigned and profile-reachable."""
    from ..dns.ede import EdeCode
    from ..resolver.profiles import PROFILES_BY_NAME
    from ..resolver.resilience import RESILIENCE_EDE_CODES

    path = "repro/resolver/resilience.py"
    reachable_anywhere: set[int] = set()
    for profile in PROFILES_BY_NAME.values():
        reachable_anywhere |= _reachable_codes(profile)
    for code in RESILIENCE_EDE_CODES:
        try:
            EdeCode(code)
        except ValueError:
            yield Finding(
                rule=RULE_RESILIENCE_CODES,
                message=(
                    f"resilience layer emits INFO-CODE {code}, which is not"
                    " assigned in the RFC 8914 registry (dns/ede.py)"
                ),
                path=path,
            )
            continue
        if code not in reachable_anywhere:
            yield Finding(
                rule=RULE_RESILIENCE_CODES,
                message=(
                    f"resilience layer emits EDE {code}, but no branch of any"
                    " vendor profile's policy can emit it"
                ),
                path=path,
            )


def check_tables() -> Iterator[Finding]:
    """All import-based table rules (no AST involved)."""
    yield from check_testbed_matrix()
    yield from check_rdata_registry()
    yield from check_resilience_codes()
    yield from check_obs_metrics()
