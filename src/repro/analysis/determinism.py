"""Determinism rules: no wall clocks, no ambient entropy, no global RNG.

Every simulated component must receive time through a
:class:`repro.net.clock.Clock` and randomness through an injected,
seeded :class:`random.Random`; that is what makes chaos schedules and
scan checkpoints replay bit-for-bit.  These rules walk the AST of every
module and flag the escape hatches:

``wall-clock``
    ``time.time()`` / ``time.monotonic()`` / ``time.sleep()`` /
    ``datetime.now()`` and friends.  The wall-clock adapter in
    ``net/clock.py`` and the operator-facing CLI tools are the
    allowlisted boundary (they carry ``# repro: allow[wall-clock]``).
``os-entropy``
    ``os.urandom``, ``secrets.*``, ``uuid.uuid1/uuid4``,
    ``random.SystemRandom`` — entropy the replay can never reproduce.
``global-random``
    Calls through the module-level ``random.*`` API, which share one
    hidden, unseeded global generator across the whole process.
``unseeded-random``
    ``random.Random()`` with no seed (or an explicit ``None``), which
    silently falls back to OS entropy.

Name resolution follows import bindings (``import random as r``,
``from time import time``), so aliased escapes are caught too; dynamic
tricks (``getattr(time, "time")``) are out of scope — the runtime
sanitizer covers those.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .findings import Finding

RULE_WALL_CLOCK = "wall-clock"
RULE_OS_ENTROPY = "os-entropy"
RULE_GLOBAL_RANDOM = "global-random"
RULE_UNSEEDED_RANDOM = "unseeded-random"

DETERMINISM_RULES = (
    RULE_WALL_CLOCK,
    RULE_OS_ENTROPY,
    RULE_GLOBAL_RANDOM,
    RULE_UNSEEDED_RANDOM,
)

#: ``time`` module functions that read or wait on the wall clock.
_TIME_FUNCS = frozenset({
    "time", "time_ns", "monotonic", "monotonic_ns",
    "perf_counter", "perf_counter_ns", "sleep", "localtime", "gmtime",
})

#: ``datetime``/``date`` classmethods that read the wall clock.
_DATETIME_FUNCS = frozenset({
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
})

_OS_ENTROPY_FUNCS = frozenset({"os.urandom", "os.getrandom"})
_UUID_ENTROPY_FUNCS = frozenset({"uuid.uuid1", "uuid.uuid4"})

def _is_unseeded(node: ast.Call) -> bool:
    if node.keywords:
        return any(
            kw.arg in (None, "x", "seed")
            and isinstance(kw.value, ast.Constant)
            and kw.value.value is None
            for kw in node.keywords
        )
    if not node.args:
        return True
    first = node.args[0]
    return isinstance(first, ast.Constant) and first.value is None


def check_determinism(tree: ast.AST, path: str) -> Iterator[Finding]:
    """Yield determinism findings for one parsed module."""
    # Shared alias machinery lives in the engine; imported lazily to keep
    # the module-level import cycle harmless (the engine imports us too).
    from .engine import AliasResolver

    aliases = AliasResolver.collect(tree)
    if not aliases.names:
        return
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        dotted = aliases.stdlib_dotted(node.func)
        if dotted is None:
            continue
        finding = _classify(dotted, node)
        if finding is not None:
            rule, message = finding
            yield Finding(rule=rule, message=message, path=path, line=node.lineno)


def _classify(dotted: str, node: ast.Call) -> tuple[str, str] | None:
    module, _, func = dotted.partition(".")
    if module == "time" and func in _TIME_FUNCS:
        return RULE_WALL_CLOCK, (
            f"wall-clock access `{dotted}()`; simulated code must read time"
            " from the injected Clock (net/clock.py is the only boundary)"
        )
    if dotted in _DATETIME_FUNCS or (
        dotted.startswith("datetime.") and dotted.split(".")[-1] in ("now", "utcnow")
    ):
        return RULE_WALL_CLOCK, (
            f"wall-clock access `{dotted}()`; simulated code must read time"
            " from the injected Clock (net/clock.py is the only boundary)"
        )
    if dotted in _OS_ENTROPY_FUNCS or module == "secrets" or dotted in _UUID_ENTROPY_FUNCS:
        return RULE_OS_ENTROPY, (
            f"OS entropy source `{dotted}()`; randomness must arrive as an"
            " injected seeded random.Random so runs replay bit-for-bit"
        )
    if dotted == "random.SystemRandom":
        return RULE_OS_ENTROPY, (
            "`random.SystemRandom` draws OS entropy; use an injected seeded"
            " random.Random instead"
        )
    if dotted == "random.Random":
        if _is_unseeded(node):
            return RULE_UNSEEDED_RANDOM, (
                "`random.Random()` without a seed falls back to OS entropy;"
                " pass an explicit seed"
            )
        return None
    if module == "random":
        return RULE_GLOBAL_RANDOM, (
            f"module-level RNG call `{dotted}()` shares the process-global"
            " generator; use an injected seeded random.Random instance"
        )
    return None
