"""Runtime determinism sanitizer.

The static rules in :mod:`.determinism` prove no *source line* reaches
the wall clock or the global RNG; this guard proves it *dynamically*,
catching anything the AST cannot see (C extensions, ``getattr`` tricks,
third-party code).  While armed, the process-global entry points raise
:class:`DeterminismViolation` instead of answering::

    with determinism_sanitizer():
        run_matrix(testbed)        # any time.time()/random.random() raises

It composes with the chaos suite the same way ASan composes with a
fuzzer: CI runs ``pytest -m chaos`` once with ``REPRO_SANITIZER=1`` so
every fabric path is exercised with the tripwires in place.  Seeded
``random.Random`` *instances* are untouched — they are exactly the
sanctioned mechanism — as is the :class:`~repro.net.clock.Clock`
hierarchy, whose simulated implementation never touches ``time``.
"""

from __future__ import annotations

import os
import random
import time
from contextlib import contextmanager
from typing import Iterable, Iterator


class DeterminismViolation(RuntimeError):
    """A sanitized region touched the wall clock or ambient entropy."""


#: (module, attribute) entry points replaced while the sanitizer is armed.
_GUARDED: tuple[tuple[object, str], ...] = (
    (time, "time"),
    (time, "time_ns"),
    (time, "monotonic"),
    (time, "perf_counter"),
    (time, "sleep"),
    (os, "urandom"),
    (random, "random"),
    (random, "randrange"),
    (random, "randint"),
    (random, "getrandbits"),
    (random, "randbytes"),
    (random, "choice"),
    (random, "choices"),
    (random, "shuffle"),
    (random, "sample"),
    (random, "uniform"),
    (random, "seed"),
)

_arm_depth = 0


def _raiser(name: str):
    def tripwire(*_args, **_kwargs):
        raise DeterminismViolation(
            f"{name}() called while the determinism sanitizer is armed;"
            " simulated code must use the injected Clock / seeded"
            " random.Random (see docs/ARCHITECTURE.md)"
        )

    return tripwire


@contextmanager
def determinism_sanitizer(allow: Iterable[str] = ()) -> Iterator[None]:
    """Arm the tripwires for the duration of the block (re-entrant).

    ``allow`` names entry points (``"time.sleep"``) left unpatched, for
    harnesses that must really wait while everything else stays strict.
    """
    global _arm_depth
    allowed = set(allow)
    saved: list[tuple[object, str, object]] = []
    _arm_depth += 1
    try:
        if _arm_depth == 1:
            for module, attr in _GUARDED:
                name = f"{getattr(module, '__name__', module)}.{attr}"
                if name in allowed:
                    continue
                saved.append((module, attr, getattr(module, attr)))
                setattr(module, attr, _raiser(name))
        yield
    finally:
        _arm_depth -= 1
        for module, attr, original in saved:
            setattr(module, attr, original)
