"""The analysis engine: walk files, run rules, honour suppressions.

A finding can be silenced with an inline marker::

    now = time.time()  # repro: allow[wall-clock]

or with a standalone comment that covers the next line::

    # repro: allow[wall-clock] -- operator-facing CLI, wall clock is the point
    started = time.time()

Markers name the rule they suppress (comma-separated for several) and
are themselves checked: a marker that suppresses nothing is reported as
``unused-suppression``, so stale annotations cannot accumulate and
quietly widen the allowlist.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from pathlib import Path
from typing import Callable, Iterable, Iterator

from .determinism import check_determinism
from .findings import Finding
from .invariants import (
    check_ede_literals,
    check_enum_members,
    check_obs_registry_calls,
    check_tables,
)

RULE_UNUSED_SUPPRESSION = "unused-suppression"
RULE_PARSE_ERROR = "parse-error"

#: AST rules applied to every analyzed module.
SOURCE_RULES: tuple[Callable[[ast.AST, str], Iterator[Finding]], ...] = (
    check_determinism,
    check_enum_members,
    check_ede_literals,
    check_obs_registry_calls,
)

_ALLOW_RE = re.compile(r"#\s*repro:\s*allow\[([a-zA-Z0-9_\s,-]+)\]")


class _Suppressions:
    """Per-file allow markers with usage tracking."""

    def __init__(self, source: str) -> None:
        #: line -> (marker line, rule names) for every line a marker covers
        self._covering: dict[int, list[tuple[int, str]]] = {}
        #: (marker line, rule) -> used?
        self._markers: dict[tuple[int, str], bool] = {}
        for lineno, text, standalone in _comments(source):
            match = _ALLOW_RE.search(text)
            if match is None:
                continue
            rules = [r.strip() for r in match.group(1).split(",") if r.strip()]
            covered = [lineno]
            if standalone:
                covered.append(lineno + 1)
            for rule in rules:
                self._markers[(lineno, rule)] = False
                for line in covered:
                    self._covering.setdefault(line, []).append((lineno, rule))

    def suppresses(self, finding: Finding) -> bool:
        for marker_line, rule in self._covering.get(finding.line, ()):
            if rule == finding.rule:
                self._markers[(marker_line, rule)] = True
                return True
        return False

    def unused(self, path: str) -> Iterator[Finding]:
        for (lineno, rule), used in sorted(self._markers.items()):
            if not used:
                yield Finding(
                    rule=RULE_UNUSED_SUPPRESSION,
                    message=(
                        f"allow[{rule}] suppresses nothing; remove the stale"
                        " marker (or fix the rule name)"
                    ),
                    path=path,
                    line=lineno,
                )


def _comments(source: str) -> Iterator[tuple[int, str, bool]]:
    """(line, text, is-standalone) for each real comment token.

    Tokenizing (rather than regex over raw lines) keeps marker text
    inside strings and docstrings from registering as a suppression.
    """
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type == tokenize.COMMENT:
                yield token.start[0], token.string, token.line.lstrip().startswith("#")
    except (tokenize.TokenError, IndentationError):
        return


def repo_source_root() -> Path:
    """The installed ``repro`` package directory (``src/repro``)."""
    return Path(__file__).resolve().parent.parent


def iter_python_files(root: Path) -> list[Path]:
    return sorted(p for p in root.rglob("*.py"))


def _display_path(path: Path, base: Path | None) -> str:
    if base is not None:
        try:
            return str(path.relative_to(base))
        except ValueError:
            pass
    return str(path)


def analyze_paths(
    paths: Iterable[Path],
    *,
    base: Path | None = None,
    rules: Iterable[Callable[[ast.AST, str], Iterator[Finding]]] = SOURCE_RULES,
) -> list[Finding]:
    """Run the AST rules over ``paths``, honouring inline suppressions."""
    findings: list[Finding] = []
    for path in paths:
        source = Path(path).read_text(encoding="utf-8")
        display = _display_path(Path(path), base)
        try:
            tree = ast.parse(source, filename=display)
        except SyntaxError as exc:
            findings.append(
                Finding(
                    rule=RULE_PARSE_ERROR,
                    message=f"cannot parse: {exc.msg}",
                    path=display,
                    line=exc.lineno or 0,
                )
            )
            continue
        suppressions = _Suppressions(source)
        for rule in rules:
            for finding in rule(tree, display):
                if not suppressions.suppresses(finding):
                    findings.append(finding)
        findings.extend(suppressions.unused(display))
    return findings


def analyze_repo(root: Path | None = None) -> list[Finding]:
    """The full selfcheck: AST rules over ``src/repro`` plus table rules."""
    package_root = root or repo_source_root()
    findings = analyze_paths(
        iter_python_files(package_root), base=package_root.parent
    )
    findings.extend(check_tables())
    return sorted(findings, key=lambda f: (f.path, f.line, f.rule))
