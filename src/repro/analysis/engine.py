"""The analysis engine: walk files, run rules, honour suppressions.

A finding can be silenced with an inline marker::

    now = time.time()  # repro: allow[wall-clock]

or with a standalone comment that covers the next line::

    # repro: allow[wall-clock] -- operator-facing CLI, wall clock is the point
    started = time.time()

Markers name the rule they suppress (comma-separated for several) and
are themselves checked: a marker that suppresses nothing is reported as
``unused-suppression``, so stale annotations cannot accumulate and
quietly widen the allowlist.  A marker naming a *known* rule that was
not part of the current run (a flow rule during a single-file pass, or
a rule excluded by ``--rule``) is exempt — it had no chance to be used.

The engine also owns the shared alias-resolution machinery
(:class:`AliasResolver`): the per-module map from local names to the
dotted entry points they denote, following ``import x as y``,
``from x import y as z`` (including relative imports), and module-level
``name = module.attr`` aliases.  The determinism rules use it to catch
aliased wall-clock escapes; the interprocedural call-graph builder in
:mod:`.flow` uses it to resolve cross-module call targets and
re-exported names.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable, Iterator

from .findings import Finding

RULE_UNUSED_SUPPRESSION = "unused-suppression"
RULE_STALE_BASELINE = "stale-baseline"
RULE_PARSE_ERROR = "parse-error"


# ---------------------------------------------------------------------------
# Alias resolution (shared by the determinism rules and the call graph)
# ---------------------------------------------------------------------------

#: Stdlib modules the determinism rules police; kept here so both the
#: per-file rules and the flow analyzer agree on the boundary set.
TRACKED_STDLIB_MODULES = frozenset(
    {"time", "random", "os", "datetime", "secrets", "uuid", "socket", "threading"}
)


class AliasResolver(ast.NodeVisitor):
    """Maps module-local names to the dotted paths they denote.

    Handles ``import a.b``, ``import a.b as c``, ``from x import y``
    (with ``as`` renames), relative imports when the module's own dotted
    name is known, and simple module-level aliases of the form
    ``wall = time.time``.  :meth:`dotted` then resolves a ``Name`` or
    ``Attribute`` chain to its dotted target, so ``wall()`` and
    ``t.sleep()`` (after ``import time as t``) both resolve.
    """

    def __init__(self, module: str | None = None, is_package: bool = False):
        #: local name -> dotted path ("random", "time.time", "repro.obs.NULL_OBS")
        self.names: dict[str, str] = {}
        self._module = module
        self._is_package = is_package

    # -- collection ----------------------------------------------------------

    @classmethod
    def collect(
        cls, tree: ast.AST, module: str | None = None, is_package: bool = False
    ) -> "AliasResolver":
        resolver = cls(module, is_package)
        resolver.visit(tree)
        if isinstance(tree, ast.Module):
            resolver._collect_module_aliases(tree)
        return resolver

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.asname:
                # ``import a.b as c`` binds c to the full dotted module.
                self.names[alias.asname] = alias.name
            else:
                # ``import a.b`` binds only the root name ``a``.
                root = alias.name.split(".")[0]
                self.names[root] = root

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        base = self._import_base(node)
        if base is None:
            return
        for alias in node.names:
            if alias.name == "*":
                continue
            bound = alias.asname or alias.name
            self.names[bound] = f"{base}.{alias.name}" if base else alias.name

    def _import_base(self, node: ast.ImportFrom) -> str | None:
        """The dotted module an ``ImportFrom`` pulls names out of."""
        if node.level == 0:
            return node.module
        if self._module is None:
            return None  # relative import with no module context
        parts = self._module.split(".")
        # The anchor package: the module itself when it *is* a package
        # (``__init__``), its parent otherwise; each extra level climbs one.
        anchor = parts if self._is_package else parts[:-1]
        climb = node.level - 1
        if climb > len(anchor):
            return None
        base_parts = anchor[: len(anchor) - climb] if climb else anchor
        if node.module:
            base_parts = base_parts + node.module.split(".")
        return ".".join(base_parts) if base_parts else None

    def _collect_module_aliases(self, tree: ast.Module) -> None:
        """Module-level ``name = <resolvable dotted>`` aliases."""
        for stmt in tree.body:
            if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
                continue
            target = stmt.targets[0]
            if not isinstance(target, ast.Name):
                continue
            dotted = self.dotted(stmt.value)
            if dotted is not None and dotted != target.id:
                self.names[target.id] = dotted

    # -- resolution ----------------------------------------------------------

    def dotted(self, node: ast.expr) -> str | None:
        """Resolve a Name/Attribute chain to its dotted path, or None."""
        if isinstance(node, ast.Name):
            return self.names.get(node.id)
        if isinstance(node, ast.Attribute):
            base = self.dotted(node.value)
            if base is not None:
                return f"{base}.{node.attr}"
        return None

    def stdlib_dotted(self, node: ast.expr) -> str | None:
        """Like :meth:`dotted` but only for the tracked stdlib modules."""
        dotted = self.dotted(node)
        if dotted is None:
            return None
        root = dotted.split(".", 1)[0]
        return dotted if root in TRACKED_STDLIB_MODULES else None


def module_name_for(path: Path) -> str:
    """The dotted module name for ``path``, via ``__init__.py`` walking.

    Climbs parent directories for as long as they are packages, so
    ``src/repro/net/clock.py`` names ``repro.net.clock`` and a fixture
    package in a tmp directory names ``fixture_pkg.module``.
    """
    path = Path(path).resolve()
    parts = [path.stem] if path.stem != "__init__" else []
    parent = path.parent
    while (parent / "__init__.py").exists():
        parts.insert(0, parent.name)
        parent = parent.parent
    if not parts:  # a bare __init__.py outside any package
        parts = [path.parent.name]
    return ".".join(parts)


# ---------------------------------------------------------------------------
# The rule catalog
# ---------------------------------------------------------------------------

#: Every rule name the engine can emit, with the layer it runs in and a
#: one-line description (``selfcheck --list-rules`` prints this).
RULE_CATALOG: dict[str, tuple[str, str]] = {
    "wall-clock": (
        "source", "wall-clock access outside the net/clock.py boundary"
    ),
    "os-entropy": (
        "source", "OS entropy (os.urandom, secrets, uuid1/4, SystemRandom)"
    ),
    "global-random": (
        "source", "module-level random.* call sharing the global generator"
    ),
    "unseeded-random": (
        "source", "random.Random() without an explicit seed"
    ),
    "ede-registry": (
        "source", "EDE INFO-CODE literal absent from the RFC 8914 registry"
    ),
    "enum-member": (
        "source", "reference to an undefined enum member"
    ),
    "obs-registry": (
        "table", "metric names/kinds drifting from the obs spec registry"
    ),
    "testbed-matrix": (
        "table", "Table 4 transcription vs testbed subdomains and policies"
    ),
    "rdata-registry": (
        "table", "rdata parser registry keyed by unregistered types"
    ),
    "resilience-codes": (
        "table", "resilience-layer EDE codes unassigned or unreachable"
    ),
    "answer-path-blocking": (
        "flow", "real-blocking or unbounded wait reachable from the frontend"
    ),
    "seed-domain-taint": (
        "flow", "jitter-domain value flowing into schedule/client-visible state"
    ),
    "never-raise": (
        "flow", "raise reachable from handle_datagram outside its handlers"
    ),
    RULE_UNUSED_SUPPRESSION: (
        "meta", "# repro: allow[...] marker that suppresses nothing"
    ),
    RULE_STALE_BASELINE: (
        "meta", "flow-baseline entry matching no current finding"
    ),
    RULE_PARSE_ERROR: (
        "meta", "file that does not parse"
    ),
}

#: Rules implemented by the cross-table checks in :mod:`.invariants`.
TABLE_RULES = ("obs-registry", "testbed-matrix", "rdata-registry", "resilience-codes")


def known_rules() -> tuple[str, ...]:
    return tuple(RULE_CATALOG)


_ALLOW_RE = re.compile(r"#\s*repro:\s*allow\[([a-zA-Z0-9_\s,-]+)\]")


class _Suppressions:
    """Per-file allow markers with usage tracking."""

    def __init__(self, source: str) -> None:
        #: line -> (marker line, rule names) for every line a marker covers
        self._covering: dict[int, list[tuple[int, str]]] = {}
        #: (marker line, rule) -> used?
        self._markers: dict[tuple[int, str], bool] = {}
        for lineno, text, standalone in _comments(source):
            match = _ALLOW_RE.search(text)
            if match is None:
                continue
            rules = [r.strip() for r in match.group(1).split(",") if r.strip()]
            covered = [lineno]
            if standalone:
                covered.append(lineno + 1)
            for rule in rules:
                self._markers[(lineno, rule)] = False
                for line in covered:
                    self._covering.setdefault(line, []).append((lineno, rule))

    def suppresses(self, finding: Finding) -> bool:
        for marker_line, rule in self._covering.get(finding.line, ()):
            if rule == finding.rule:
                self._markers[(marker_line, rule)] = True
                return True
        return False

    def unused(self, path: str, active: frozenset[str] | None = None) -> Iterator[Finding]:
        """Markers that suppressed nothing this run.

        With ``active`` given, a marker naming a known-but-inactive rule
        is exempt (it never had a chance to fire); unknown rule names
        are always reported so typos cannot hide.
        """
        for (lineno, rule), used in sorted(self._markers.items()):
            if used:
                continue
            if active is not None and rule in RULE_CATALOG and rule not in active:
                continue
            yield Finding(
                rule=RULE_UNUSED_SUPPRESSION,
                message=(
                    f"allow[{rule}] suppresses nothing; remove the stale"
                    " marker (or fix the rule name)"
                ),
                path=path,
                line=lineno,
            )


def _comments(source: str) -> Iterator[tuple[int, str, bool]]:
    """(line, text, is-standalone) for each real comment token.

    Tokenizing (rather than regex over raw lines) keeps marker text
    inside strings and docstrings from registering as a suppression.
    """
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type == tokenize.COMMENT:
                yield token.start[0], token.string, token.line.lstrip().startswith("#")
    except (tokenize.TokenError, IndentationError):
        return


# ---------------------------------------------------------------------------
# File loading
# ---------------------------------------------------------------------------


@dataclass
class SourceFile:
    """One parsed module, ready for source and flow rules."""

    path: Path
    display: str
    tree: ast.Module
    suppressions: _Suppressions
    module: str


def repo_source_root() -> Path:
    """The installed ``repro`` package directory (``src/repro``)."""
    return Path(__file__).resolve().parent.parent


def default_flow_baseline() -> Path:
    """The committed baseline of intentional flow-rule exceptions."""
    return Path(__file__).resolve().parent / "flow_baseline.json"


def iter_python_files(root: Path) -> list[Path]:
    return sorted(p for p in root.rglob("*.py"))


def _display_path(path: Path, base: Path | None) -> str:
    if base is not None:
        try:
            return str(path.relative_to(base))
        except ValueError:
            pass
    return str(path)


def load_files(
    paths: Iterable[Path], base: Path | None
) -> tuple[list[SourceFile], list[Finding]]:
    files: list[SourceFile] = []
    findings: list[Finding] = []
    for path in paths:
        source = Path(path).read_text(encoding="utf-8")
        display = _display_path(Path(path), base)
        try:
            tree = ast.parse(source, filename=display)
        except SyntaxError as exc:
            findings.append(
                Finding(
                    rule=RULE_PARSE_ERROR,
                    message=f"cannot parse: {exc.msg}",
                    path=display,
                    line=exc.lineno or 0,
                )
            )
            continue
        files.append(
            SourceFile(
                path=Path(path),
                display=display,
                tree=tree,
                suppressions=_Suppressions(source),
                module=module_name_for(Path(path)),
            )
        )
    return files, findings


# ---------------------------------------------------------------------------
# Orchestration
# ---------------------------------------------------------------------------

# The rule modules import AliasResolver from here lazily, so these
# imports must come after its definition to keep the cycle harmless.
from .determinism import check_determinism  # noqa: E402
from .invariants import (  # noqa: E402
    check_ede_literals,
    check_enum_members,
    check_obs_registry_calls,
    check_tables,
)

#: AST rules applied to every analyzed module.
SOURCE_RULES: tuple[Callable[[ast.AST, str], Iterator[Finding]], ...] = (
    check_determinism,
    check_enum_members,
    check_ede_literals,
    check_obs_registry_calls,
)


def _active_rules(
    flow: bool, selected: frozenset[str] | None
) -> frozenset[str]:
    """The rule names that can fire in this run (for marker hygiene)."""
    from .flow import FLOW_RULES

    active = set(RULE_CATALOG)
    if not flow:
        active -= set(FLOW_RULES)
        active.discard(RULE_STALE_BASELINE)
    if selected is not None:
        active &= selected
    return frozenset(active)


def analyze_paths(
    paths: Iterable[Path],
    *,
    base: Path | None = None,
    rules: Iterable[Callable[[ast.AST, str], Iterator[Finding]]] = SOURCE_RULES,
    flow: bool = False,
    baseline: Path | None = None,
    repo_mode: bool = False,
    selected: Iterable[str] | None = None,
) -> list[Finding]:
    """Run the analysis over ``paths``, honouring inline suppressions.

    ``flow`` additionally builds the whole-program call graph over the
    given files and runs the interprocedural rules (:mod:`.flow`);
    ``baseline`` names a committed file of intentional flow exceptions,
    and ``repo_mode`` turns on stale-baseline detection (only the full
    repo pass sees every finding a baseline entry could match).
    ``selected`` restricts the run to the named rules.
    """
    chosen = frozenset(selected) if selected is not None else None
    active = _active_rules(flow, chosen)
    files, findings = load_files(paths, base)

    def wanted(finding: Finding) -> bool:
        return chosen is None or finding.rule in chosen

    for file in files:
        for rule in rules:
            for finding in rule(file.tree, file.display):
                if not wanted(finding):
                    continue
                if not file.suppressions.suppresses(finding):
                    findings.append(finding)

    if flow:
        findings.extend(
            _run_flow(files, chosen, baseline, repo_mode, active)
        )

    if RULE_UNUSED_SUPPRESSION in active:
        for file in files:
            findings.extend(file.suppressions.unused(file.display, active))
    return findings


def _run_flow(
    files: list[SourceFile],
    chosen: frozenset[str] | None,
    baseline: Path | None,
    repo_mode: bool,
    active: frozenset[str],
) -> list[Finding]:
    from .flow import FLOW_RULES, analyze_program, load_baseline

    flow_rules = tuple(
        r for r in FLOW_RULES if chosen is None or r in chosen
    )
    if not flow_rules:
        return []
    entries = load_baseline(baseline) if baseline is not None else {}
    by_display = {file.display: file for file in files}
    used_keys: set[str] = set()
    findings: list[Finding] = []
    for finding in analyze_program(files, rules=flow_rules):
        if finding.key in entries:
            used_keys.add(finding.key)
            continue
        file = by_display.get(finding.path)
        if file is not None and file.suppressions.suppresses(finding):
            continue
        findings.append(finding)
    if repo_mode and RULE_STALE_BASELINE in active:
        for key in sorted(set(entries) - used_keys):
            findings.append(
                Finding(
                    rule=RULE_STALE_BASELINE,
                    message=(
                        f"baseline entry {key!r} matches no current finding;"
                        " remove it from the baseline file"
                    ),
                    path=str(baseline),
                )
            )
    return findings


def analyze_repo(
    root: Path | None = None, selected: Iterable[str] | None = None
) -> list[Finding]:
    """The full selfcheck: source, table, and flow rules over ``src/repro``."""
    package_root = root or repo_source_root()
    chosen = frozenset(selected) if selected is not None else None
    findings = analyze_paths(
        iter_python_files(package_root),
        base=package_root.parent,
        flow=True,
        baseline=default_flow_baseline(),
        repo_mode=True,
        selected=selected,
    )
    if chosen is None or chosen & set(TABLE_RULES):
        findings.extend(
            f for f in check_tables() if chosen is None or f.rule in chosen
        )
    return sorted(findings, key=lambda f: (f.path, f.line, f.rule))
