"""Static analysis of the reproduction itself.

PR 1 made bit-for-bit replay a core guarantee; this package *enforces*
the invariants that guarantee rests on:

* **Determinism rules** (:mod:`.determinism`) — AST lint forbidding
  wall-clock reads, OS entropy, and global-RNG use anywhere in the
  simulation: clocks arrive via :class:`repro.net.clock.Clock` and
  randomness via an injected, seeded :class:`random.Random`.
* **Protocol-invariant rules** (:mod:`.invariants`) — cross-checks of
  the data tables against the registries they reference: every EDE
  INFO-CODE must resolve in the RFC 8914 registry, every testbed case
  in the paper's Table 4 transcription must map to a defined subdomain
  and a reachable policy branch, every enum member reference must exist.
* **Runtime sanitizer** (:mod:`.sanitizer`) — an opt-in guard that
  patches the same entry points to *raise* inside fabric runs, so the
  static allowlist can be proven sound end-to-end.

``python -m repro.tools.selfcheck`` runs the whole pass and exits
non-zero on findings; CI gates on it.
"""

from .findings import Finding, Severity, findings_to_json, render_finding
from .engine import analyze_paths, analyze_repo, repo_source_root
from .sanitizer import DeterminismViolation, determinism_sanitizer

__all__ = [
    "DeterminismViolation",
    "Finding",
    "Severity",
    "analyze_paths",
    "analyze_repo",
    "determinism_sanitizer",
    "findings_to_json",
    "render_finding",
    "repo_source_root",
]
