"""Static analysis of the reproduction itself.

PR 1 made bit-for-bit replay a core guarantee; this package *enforces*
the invariants that guarantee rests on:

* **Determinism rules** (:mod:`.determinism`) — AST lint forbidding
  wall-clock reads, OS entropy, and global-RNG use anywhere in the
  simulation: clocks arrive via :class:`repro.net.clock.Clock` and
  randomness via an injected, seeded :class:`random.Random`.
* **Protocol-invariant rules** (:mod:`.invariants`) — cross-checks of
  the data tables against the registries they reference: every EDE
  INFO-CODE must resolve in the RFC 8914 registry, every testbed case
  in the paper's Table 4 transcription must map to a defined subdomain
  and a reachable policy branch, every enum member reference must exist.
* **Flow rules** (:mod:`.flow`) — interprocedural analysis over a
  whole-program call graph: no real-blocking call or unbounded wait
  reachable from ``ResilientFrontend.handle_datagram``, no
  jitter-domain value flowing into schedule-domain or client-visible
  state, no ``raise`` escaping the frontend's handlers.  Intentional
  exceptions live in a committed baseline (``flow_baseline.json``).
* **Runtime sanitizer** (:mod:`.sanitizer`) — an opt-in guard that
  patches the same entry points to *raise* inside fabric runs, so the
  static allowlist can be proven sound end-to-end.

``python -m repro.tools.selfcheck`` runs the whole pass and exits
non-zero on findings; CI gates on it.
"""

from .findings import Finding, Severity, findings_to_json, render_finding
from .engine import (
    AliasResolver,
    analyze_paths,
    analyze_repo,
    default_flow_baseline,
    known_rules,
    repo_source_root,
)
from .sanitizer import DeterminismViolation, determinism_sanitizer

__all__ = [
    "AliasResolver",
    "DeterminismViolation",
    "Finding",
    "Severity",
    "analyze_paths",
    "analyze_repo",
    "default_flow_baseline",
    "determinism_sanitizer",
    "findings_to_json",
    "known_rules",
    "render_finding",
    "repo_source_root",
]
