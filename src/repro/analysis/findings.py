"""Findings: what a rule reports, and how both linters print it.

The zone linter (:mod:`repro.zones.lint`) predates this package and has
its own ``Finding`` shape; :func:`findings_to_json` renders either kind
so ``tools/lint --json`` and ``tools/selfcheck --json`` share one output
schema.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from enum import Enum


class Severity(Enum):
    ERROR = "error"  # the invariant is broken; selfcheck exits non-zero
    WARNING = "warning"
    INFO = "info"


@dataclass(frozen=True)
class Finding:
    """One rule violation at a file/line."""

    rule: str
    message: str
    path: str = ""
    line: int = 0
    severity: Severity = Severity.ERROR
    #: Stable identity for baseline matching (flow rules only): rule +
    #: enclosing symbol + violation token, independent of line numbers so
    #: unrelated edits do not invalidate committed baseline entries.
    key: str = ""

    def __str__(self) -> str:
        return render_finding(self)


def render_finding(finding) -> str:
    """Text rendering shared by the analysis and zone-lint CLIs."""
    record = _as_record(finding)
    where = record["path"] or record["name"]
    if record["line"]:
        where = f"{where}:{record['line']}"
    prefix = f"{where}: " if where else ""
    return f"{prefix}[{record['severity']}] {record['check']}: {record['message']}"


def _as_record(finding) -> dict:
    """Normalize an analysis or zone-lint finding into one flat dict."""
    severity = getattr(finding, "severity", Severity.ERROR)
    return {
        "severity": severity.value if isinstance(severity, Enum) else str(severity),
        "check": getattr(finding, "rule", "") or getattr(finding, "check", ""),
        "message": finding.message,
        "path": getattr(finding, "path", ""),
        "line": getattr(finding, "line", 0),
        "name": str(getattr(finding, "name", "")),
    }


def findings_to_json(findings) -> str:
    """The ``--json`` schema shared by ``tools/lint`` and ``tools/selfcheck``."""
    records = [_as_record(f) for f in findings]
    errors = sum(1 for r in records if r["severity"] == Severity.ERROR.value)
    payload = {
        "findings": records,
        "total": len(records),
        "errors": errors,
    }
    return json.dumps(payload, indent=2, sort_keys=True)
