"""Figures 1 and 2 — per-TLD and per-rank distributions of EDE domains."""

from repro.experiments.harness import experiment_figure1, experiment_figure2
from repro.scan.analysis import tld_ratios, tranco_overlap


def test_figure1_tld_cdf(benchmark, scan_ctx):
    """Regenerates the Figure 1 input series (per-TLD EDE ratios)."""
    ratios = benchmark(tld_ratios, scan_ctx.result, scan_ctx.population)
    assert ratios.gtld_ratios and ratios.cctld_ratios
    # Structural invariants that hold at any scale: the 13 fully-broken
    # TLDs produce ratio-1.0 entries, and zero-EDE TLDs exist.
    assert ratios.full_count(cc=False) >= 1
    assert ratios.zero_fraction(cc=False) > 0.0


def test_figure1_report(benchmark, scan_ctx):
    report = benchmark(experiment_figure1, scan_ctx)
    assert "gTLDs" in report.body and "ccTLDs" in report.body


def test_figure2_tranco_cdf(benchmark, scan_ctx):
    """Regenerates the Figure 2 series (EDE domains across ranks)."""
    overlap = benchmark(tranco_overlap, scan_ctx.result)
    assert overlap.tranco_size > 0
    series = overlap.rank_cdf()
    ys = [y for _, y in series]
    assert ys == sorted(ys)  # a proper CDF


def test_figure2_report(benchmark, scan_ctx):
    report = benchmark(experiment_figure2, scan_ctx)
    assert report.comparisons
