"""Concurrent scan engine: throughput, coalescing, and codec fast paths.

The lane-pool driver is the repo's answer to zdns-style pipelining; its
benchmarks measure *wall* cost of driving the simulated fabric (the
pytest-benchmark numbers) while asserting the *virtual* speedup and the
categorization invariance that make the concurrency admissible at all.
"""

import pytest

from repro.bench import population_config_for, run_one
from repro.dns.message import Message
from repro.dns.wire import WireReader
from repro.scan.population import generate_population


@pytest.fixture(scope="module")
def bench_population():
    # ~300 domains: large enough that lanes interleave meaningfully,
    # small enough for a benchmark iteration budget.
    return generate_population(population_config_for(250, seed=20230524))


def test_scan_sequential_baseline(benchmark, bench_population):
    run = benchmark.pedantic(
        lambda: run_one(bench_population, workers=1, use_lanes=False),
        iterations=1, rounds=1,
    )
    assert run.domains == len(bench_population.domains)
    assert run.mode == "sequential"


def test_scan_concurrent_lanes(benchmark, bench_population):
    baseline = run_one(bench_population, workers=1, use_lanes=False)
    run = benchmark.pedantic(
        lambda: run_one(bench_population, workers=16, use_lanes=True),
        iterations=1, rounds=1,
    )
    # The virtual makespan must beat sequential by a wide margin while
    # producing byte-identical per-domain results.
    assert run.active_virtual_s < baseline.active_virtual_s / 2
    assert run.categorization == baseline.categorization
    assert run.coalesced > 0


def _compressed_wire() -> bytes:
    from repro.dns.name import Name
    from repro.dns.rdata import NS
    from repro.dns.rrset import RRset
    from repro.dns.types import RdataType

    message = Message.make_query("a.b.c.d.example.com.", RdataType.NS, msg_id=7)
    message.qr = True
    for i in range(13):
        message.authority.append(
            RRset.of(
                Name.from_text("example.com."),
                RdataType.NS,
                NS(target=Name.from_text(f"ns{i}.c.d.example.com.")),
                ttl=300,
            )
        )
    return message.to_wire(max_size=65535)


def test_wire_name_cache_parse(benchmark):
    """Pointer-heavy message parse with the name-compression cache on."""
    wire = _compressed_wire()
    message = benchmark(Message.from_wire, wire)
    assert len(message.authority[0]) == 13


def test_wire_name_walk_slow_path(benchmark):
    """The same parse with the cache disabled, for the delta."""
    wire = _compressed_wire()

    def parse_names():
        reader = WireReader(wire, offset=12, name_cache=False)
        reader.read_name()
        reader.seek(12)
        return reader.read_name()

    name = benchmark(parse_names)
    assert name.label_count() == 7
