"""Table 1 — the EDE registry, and the cost of carrying EDE on the wire."""

from repro.dns.ede import EDE_DESCRIPTIONS, EdeCode, ExtendedError, describe
from repro.dns.edns import Edns
from repro.dns.message import Message
from repro.experiments.harness import experiment_table1


def test_table1_registry(benchmark):
    """Regenerates Table 1 and verifies it against the paper."""
    report = benchmark(experiment_table1)
    assert report.all_ok
    assert len(EDE_DESCRIPTIONS) == 30


def test_ede_option_encode(benchmark):
    option = ExtendedError.make(
        EdeCode.NETWORK_ERROR, "203.0.113.1:53 rcode=REFUSED for example.com. A"
    )
    data = benchmark(option.to_wire_data)
    assert data[:2] == b"\x00\x17"


def test_ede_option_decode(benchmark):
    data = ExtendedError.make(EdeCode.DNSSEC_BOGUS, "chain of trust broken").to_wire_data()
    option = benchmark(ExtendedError.from_wire_data, data)
    assert option.info_code == 6


def test_full_registry_lookup(benchmark):
    def lookup_all():
        return [describe(code) for code in range(30)]

    descriptions = benchmark(lookup_all)
    assert descriptions[22] == "No Reachable Authority"


def test_message_with_three_ede_round_trip(benchmark):
    message = Message.make_query("extended-dns-errors.com.", want_dnssec=True)
    message.qr = True
    message.edns = Edns()
    message.add_ede(9)
    message.add_ede(22)
    message.add_ede(23, "192.0.2.1:53 rcode=REFUSED for x.com. A")

    def round_trip():
        return Message.from_wire(message.to_wire())

    decoded = benchmark(round_trip)
    assert decoded.ede_codes == (9, 22, 23)
