"""Shared fixtures for the benchmark suite.

The scan-based benchmarks share one universe; its scale comes from the
``REPRO_SCAN_SCALE`` environment variable (default 1:20000, which keeps
the whole suite around two minutes — the paper-faithful 1:1000 run is
documented in EXPERIMENTS.md).
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.harness import ScanContext, TestbedContext

SCAN_SCALE = int(os.environ.get("REPRO_SCAN_SCALE", "20000"))


@pytest.fixture(scope="session")
def testbed_ctx() -> TestbedContext:
    return TestbedContext.create()


@pytest.fixture(scope="session")
def scan_ctx() -> ScanContext:
    return ScanContext.create(scale=SCAN_SCALE)
