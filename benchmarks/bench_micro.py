"""Micro-benchmarks: the substrate operations everything else pays for."""

from repro.dns.message import Message
from repro.dns.name import Name
from repro.dns.rdata import A
from repro.dns.rrset import RRset
from repro.dns.types import RdataType
from repro.dnssec import rsa
from repro.dnssec.keys import KeyPair, ZSK_FLAGS, verify_signature
from repro.dnssec.nsec3 import nsec3_hash
from repro.dnssec.signer import SigningPolicy, sign_rrset, signed_data

NOW = 1_684_108_800


def _response_wire() -> bytes:
    message = Message.make_query("www.extended-dns-errors.com.", want_dnssec=True)
    message.qr = True
    for i in range(4):
        message.answer.append(
            RRset.of(
                Name.from_text("www.extended-dns-errors.com."),
                RdataType.A,
                A(address=f"93.184.216.{i + 1}"),
            )
        )
    message.add_ede(22)
    message.add_ede(23, "192.0.2.1:53 rcode=REFUSED for x.com. A")
    return message.to_wire()


def test_message_parse(benchmark):
    wire = _response_wire()
    message = benchmark(Message.from_wire, wire)
    assert message.ede_codes == (22, 23)


def test_message_encode(benchmark):
    wire = _response_wire()
    message = Message.from_wire(wire)
    out = benchmark(message.to_wire)
    assert len(out) == len(wire)


def test_name_parse(benchmark):
    name = benchmark(Name.from_text, "a.very.deep.subdomain.example.com.")
    assert name.label_count() == 7


def test_nsec3_hash_zero_iterations(benchmark):
    name = Name.from_text("www.example.com.")
    digest = benchmark(nsec3_hash, name, b"", 0)
    assert len(digest) == 20


def test_nsec3_hash_ten_iterations(benchmark):
    name = Name.from_text("www.example.com.")
    digest = benchmark(nsec3_hash, name, b"\xab\xcd", 10)
    assert len(digest) == 20


def test_rsa_1024_sign(benchmark):
    key = rsa.generate_keypair(1024, seed=1)
    signature = benchmark(rsa.sign, key, b"x" * 200)
    assert rsa.verify(key.public, b"x" * 200, signature)


def test_rsa_1024_verify(benchmark):
    key = rsa.generate_keypair(1024, seed=1)
    signature = rsa.sign(key, b"x" * 200)
    assert benchmark(rsa.verify, key.public, b"x" * 200, signature)


def test_simulated_ecdsa_sign(benchmark):
    key = KeyPair.generate(13, ZSK_FLAGS, seed=1)
    signature = benchmark(key.sign, b"x" * 200)
    assert verify_signature(key.dnskey(), b"x" * 200, signature)


def test_rrset_sign_and_verify(benchmark):
    key = KeyPair.generate(13, ZSK_FLAGS, seed=2)
    zone = Name.from_text("example.com.")
    rrset = RRset.of(
        Name.from_text("www.example.com."), RdataType.A, A(address="192.0.2.1")
    )
    policy = SigningPolicy.window(NOW)

    def sign_verify():
        sig = sign_rrset(rrset, key, zone, policy)
        return verify_signature(key.dnskey(), signed_data(rrset, sig), sig.signature)

    assert benchmark(sign_verify)


def test_end_to_end_resolution(benchmark, testbed_ctx):
    """One full validated resolution through fabric + engine + validator."""
    from repro.resolver.profiles import CLOUDFLARE
    from repro.resolver.recursive import RecursiveResolver

    testbed = testbed_ctx.testbed
    resolver = RecursiveResolver(
        fabric=testbed.fabric, profile=CLOUDFLARE,
        root_hints=testbed.root_hints, trust_anchors=testbed.trust_anchors,
    )
    deployed = testbed.cases["valid"]

    def resolve_uncached():
        resolver.flush_caches()
        return resolver.resolve(deployed.query_name, RdataType.A)

    response = benchmark(resolve_uncached)
    assert response.rcode == 0


def test_cached_resolution(benchmark, testbed_ctx):
    from repro.resolver.profiles import CLOUDFLARE
    from repro.resolver.recursive import RecursiveResolver

    testbed = testbed_ctx.testbed
    resolver = RecursiveResolver(
        fabric=testbed.fabric, profile=CLOUDFLARE,
        root_hints=testbed.root_hints, trust_anchors=testbed.trust_anchors,
    )
    deployed = testbed.cases["valid"]
    resolver.resolve(deployed.query_name, RdataType.A)

    response = benchmark(resolver.resolve, deployed.query_name, RdataType.A)
    assert response.rcode == 0
