"""Ablations for the design choices DESIGN.md calls out.

* cache on/off — how much the delegation/infra caches matter for scan
  throughput (the "start at the deepest known zone cut" optimization);
* EDE on/off — the wire-size cost of carrying extended errors;
* validation on/off — what DNSSEC processing adds to a resolution.
"""

from repro.dns.edns import Edns
from repro.dns.message import Message
from repro.dns.name import Name
from repro.dns.rdata import A
from repro.dns.rrset import RRset
from repro.dns.types import RdataType
from repro.resolver.iterative import IterativeEngine
from repro.resolver.profiles import CLOUDFLARE
from repro.resolver.recursive import RecursiveResolver


def _make_resolver(testbed, validate=True):
    return RecursiveResolver(
        fabric=testbed.fabric, profile=CLOUDFLARE,
        root_hints=testbed.root_hints, trust_anchors=testbed.trust_anchors,
        validate=validate,
    )


def test_ablation_resolution_with_validation(benchmark, testbed_ctx):
    resolver = _make_resolver(testbed_ctx.testbed, validate=True)
    deployed = testbed_ctx.testbed.cases["valid"]

    def run():
        resolver.flush_caches()
        return resolver.resolve(deployed.query_name, RdataType.A)

    assert benchmark(run).rcode == 0


def test_ablation_resolution_without_validation(benchmark, testbed_ctx):
    resolver = _make_resolver(testbed_ctx.testbed, validate=False)
    deployed = testbed_ctx.testbed.cases["valid"]

    def run():
        resolver.flush_caches()
        return resolver.resolve(deployed.query_name, RdataType.A)

    assert benchmark(run).rcode == 0


def test_ablation_warm_delegation_cache(benchmark, testbed_ctx):
    """Engine restarts at the deepest known cut instead of the root."""
    testbed = testbed_ctx.testbed
    engine = IterativeEngine(testbed.fabric, testbed.root_hints)
    target = testbed.cases["valid"].query_name
    engine.resolve(target, RdataType.A, [])  # warm the delegation cache

    def warm():
        return engine.resolve(target, RdataType.A, [])

    result = benchmark(warm)
    assert result.ok


def test_ablation_cold_delegation_cache(benchmark, testbed_ctx):
    testbed = testbed_ctx.testbed
    target = testbed.cases["valid"].query_name

    def cold():
        engine = IterativeEngine(testbed.fabric, testbed.root_hints)
        return engine.resolve(target, RdataType.A, [])

    result = benchmark(cold)
    assert result.ok


def _response(n_ede: int) -> Message:
    message = Message.make_query("www.extended-dns-errors.com.", want_dnssec=True)
    message.qr = True
    message.edns = Edns()
    message.answer.append(
        RRset.of(
            Name.from_text("www.extended-dns-errors.com."),
            RdataType.A,
            A(address="93.184.216.34"),
        )
    )
    texts = [
        "",
        "185.199.0.53:53 rcode=REFUSED for www.extended-dns-errors.com. A",
        "failed to verify an insecure referral proof",
    ]
    for index in range(n_ede):
        message.add_ede(22 + index % 2, texts[index % len(texts)])
    return message


def test_ablation_wire_size_without_ede(benchmark):
    message = _response(0)
    wire = benchmark(message.to_wire)
    assert len(wire) < 120


def test_ablation_wire_size_with_ede(benchmark):
    message = _response(3)
    wire = benchmark(message.to_wire)
    baseline = len(_response(0).to_wire())
    overhead = len(wire) - baseline
    # EDE is cheap: a handful of octets per option plus the EXTRA-TEXT.
    assert 0 < overhead < 200


def test_ablation_serve_stale_disabled(benchmark, testbed_ctx):
    """Without serve-stale, an outage is a hard SERVFAIL (no EDE 3)."""
    import dataclasses

    from repro.resolver.cache import CacheConfig

    testbed = testbed_ctx.testbed
    profile = dataclasses.replace(CLOUDFLARE, cache=CacheConfig(serve_stale=False))
    resolver = RecursiveResolver(
        fabric=testbed.fabric, profile=profile,
        root_hints=testbed.root_hints, trust_anchors=testbed.trust_anchors,
    )
    deployed = testbed.cases["valid"]

    def run():
        resolver.flush_caches()
        return resolver.resolve(deployed.query_name, RdataType.A)

    response = benchmark(run)
    assert 3 not in response.ede_codes
