"""Benchmarks for the extension subsystems: Section 3.2 selection, the
forwarder tier, multi-vendor scanning, policy, and error reporting."""

from repro.dns.name import Name
from repro.dns.rcode import Rcode
from repro.dns.types import RdataType
from repro.experiments.harness import experiment_section32
from repro.resolver.forwarder import ForwardingResolver
from repro.resolver.policy import LocalPolicy, PolicyAction
from repro.resolver.profiles import CLOUDFLARE
from repro.resolver.recursive import RecursiveResolver
from repro.scan.comparison import compare_vendors
from repro.scan.population import Profile


def test_section32_resolver_selection(benchmark, testbed_ctx):
    """Probing ten public resolvers keeps exactly Cloudflare/Quad9/OpenDNS."""

    def probe():
        return experiment_section32(testbed_ctx)

    report = benchmark.pedantic(probe, rounds=1, iterations=1)
    assert report.all_ok, report.render()


def test_vendor_comparison_on_sample(benchmark, scan_ctx):
    """'What if the paper had scanned with another vendor?' — Cloudflare
    must come out as the most revealing, as Section 3 concludes."""
    sample = [
        d for d in scan_ctx.population.domains
        if Profile(d.profile) not in (Profile.VALID_UNSIGNED, Profile.VALID_SIGNED)
    ][:300]

    def compare():
        return compare_vendors(scan_ctx.wild, sample)

    comparison = benchmark.pedantic(compare, rounds=1, iterations=1)
    assert comparison.richest_vendor() == "cloudflare"
    assert comparison.detection_rate("cloudflare") > comparison.detection_rate("unbound")


def test_policy_evaluation_speed(benchmark):
    policy = LocalPolicy()
    for index in range(2000):
        policy.add(f"bad{index:05d}.example.", PolicyAction.BLOCK, reason="Malware")
    qname = Name.from_text("www.bad01234.example.")

    decision = benchmark(policy.evaluate, qname)
    assert decision is not None


def test_zone_lint_speed(benchmark, testbed_ctx):
    """Offline linting of a fully signed zone (the operator-side check)."""
    from repro.zones.lint import lint_zone

    deployed = testbed_ctx.testbed.cases["valid"]
    now = int(testbed_ctx.testbed.fabric.clock.now())

    def lint():
        return lint_zone(
            deployed.built.zone, now=now, parent_ds=deployed.built.ds_rdatas
        )

    findings = benchmark(lint)
    assert not [f for f in findings if f.severity.value == "error"]


def test_ablation_qname_minimization_overhead(benchmark, testbed_ctx):
    """RFC 9156 costs extra queries per resolution; measure how many."""
    from repro.resolver.iterative import EngineConfig, IterativeEngine

    testbed = testbed_ctx.testbed
    target = testbed.cases["valid"].query_name

    def minimized():
        engine = IterativeEngine(
            testbed.fabric, testbed.root_hints, EngineConfig(qname_minimization=True)
        )
        return engine.resolve(target, RdataType.A, [])

    result = benchmark(minimized)
    assert result.ok


def test_forwarder_relay_cost(benchmark, testbed_ctx):
    testbed = testbed_ctx.testbed
    upstream = RecursiveResolver(
        fabric=testbed.fabric, profile=CLOUDFLARE,
        root_hints=testbed.root_hints, trust_anchors=testbed.trust_anchors,
    )
    address = "192.0.9.200"
    try:
        testbed.fabric.register(address, upstream)
    except ValueError:
        pass
    forwarder = ForwardingResolver(fabric=testbed.fabric, upstreams=[address])
    deployed = testbed.cases["valid"]
    # warm the upstream cache so the bench isolates the relay hop
    forwarder.resolve(deployed.query_name, RdataType.A)

    def relay():
        forwarder.cache.flush()
        return forwarder.resolve(deployed.query_name, RdataType.A)

    response = benchmark(relay)
    assert response.rcode == Rcode.NOERROR
