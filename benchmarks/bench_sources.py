"""Section 4.1 — input-list assembly (AXFR, CZDS, Tranco, pDNS, CT)."""

from repro.experiments.harness import experiment_section41
from repro.resolver.transfer import axfr, axfr_domains
from repro.scan.sources import InputListBuilder


def test_section41_input_assembly(benchmark, scan_ctx):
    """The 488M→303M funnel reproduces at scale (ratio within 15%)."""

    def assemble():
        return experiment_section41(scan_ctx)

    report = benchmark.pedantic(assemble, rounds=1, iterations=1)
    assert report.all_ok, report.render()


def test_axfr_transfer_speed(benchmark, scan_ctx):
    """One real RFC 5936 transfer of an open ccTLD zone."""
    wild = scan_ctx.wild
    address = wild.tld_addresses["se"]

    def transfer():
        return axfr(wild.fabric, address, "se.")

    zone = benchmark(transfer)
    expected = [d.name for d in wild.population.domains if d.tld == "se"]
    assert sorted(axfr_domains(zone)) == sorted(expected)


def test_czds_dump_speed(benchmark, scan_ctx):
    builder = InputListBuilder(scan_ctx.wild)
    entries = benchmark(builder.czds_dump)
    assert entries
