"""Section 4.2 — the Internet-wide scan and its category table."""

from repro.experiments.harness import (
    experiment_section42,
    experiment_section42_ns,
    seeded_code_counts,
)
from repro.scan.analysis import analyze, pipeline_accuracy
from repro.scan.scanner import WildScanner
from repro.scan.wild import WildInternet


def test_section42_category_recovery(benchmark, scan_ctx):
    """The pipeline must recover the seeded category counts exactly."""
    report = benchmark(experiment_section42, scan_ctx)
    seeded_rows = [c for c in report.comparisons if "(seeded)" in c.metric]
    assert seeded_rows and all(c.ok for c in seeded_rows), report.render()
    accuracy, wrong = pipeline_accuracy(scan_ctx.result)
    assert accuracy == 1.0, [w.name for w in wrong[:5]]


def test_section42_category_ranking(benchmark, scan_ctx):
    """Lame delegation (22, 23) and RRSIGs Missing (10) dominate, as in
    the paper's ranked category list."""

    def rank():
        return [c.code for c in scan_ctx.analysis.categories[:4]]

    top = benchmark(rank)
    assert top[:2] == [22, 23]
    assert 10 in top


def test_section42_analysis_cost(benchmark, scan_ctx):
    analysis = benchmark(analyze, scan_ctx.result, scan_ctx.population)
    assert analysis.ede_domains == scan_ctx.analysis.ede_domains


def test_section42_seeded_counts_match_measured(benchmark, scan_ctx):
    seeded = benchmark(seeded_code_counts, scan_ctx.population)
    measured = {c.code: c.domains for c in scan_ctx.analysis.categories}
    assert measured == {code: n for code, n in seeded.items() if n}


def test_section42_ns_concentration(benchmark, scan_ctx):
    """Broken-nameserver statistics (267k REFUSED / fixing-20k-covers-81%)."""
    report = benchmark(experiment_section42_ns, scan_ctx)
    ns = scan_ctx.analysis.nameservers
    assert ns.by_kind.get("refused", 0) >= ns.by_kind.get("servfail", 0)
    assert 0.5 <= ns.coverage_at_paper_fraction <= 1.0


def test_scan_throughput(benchmark, scan_ctx):
    """Domains scanned per second through the full resolver stack."""
    sample = scan_ctx.population.domains[:256]

    def rescan():
        scanner = WildScanner(scan_ctx.wild, seed=123)
        return scanner.scan(domains=sample)

    result = benchmark.pedantic(rescan, rounds=1, iterations=1)
    assert len(result.records) == len(sample)
