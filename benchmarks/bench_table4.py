"""Tables 2-4 and Section 3.3 — the testbed experiment end to end."""

import pytest

from repro.experiments.harness import (
    experiment_section33,
    experiment_table2_3,
    experiment_table4,
)
from repro.testbed.expected import EXPECTED_TABLE4
from repro.testbed.infra import build_testbed
from repro.testbed.runner import run_matrix


def test_table2_3_testbed_inventory(benchmark, testbed_ctx):
    """Verifies the 63-case inventory (Tables 2-3) against the paper."""
    report = benchmark(experiment_table2_3, testbed_ctx)
    assert report.all_ok, report.render()


def test_table4_matrix_regeneration(benchmark, testbed_ctx):
    """Re-runs all 63x7 queries and compares every cell with Table 4."""

    def regenerate():
        return run_matrix(testbed_ctx.testbed)

    matrix = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    assert matrix.diff_against_paper() == []
    assert matrix.agreement_with_paper() == 1.0


def test_table4_report(benchmark, testbed_ctx):
    report = benchmark(experiment_table4, testbed_ctx)
    assert report.all_ok, report.render()


def test_section33_consistency_stats(benchmark, testbed_ctx):
    """The 94%-inconsistency and 12-unique-codes statistics."""
    report = benchmark(experiment_section33, testbed_ctx)
    assert report.all_ok, report.render()
    ratio = testbed_ctx.matrix.inconsistency_ratio()
    assert ratio == pytest.approx(59 / 63)


def test_testbed_build_cost(benchmark):
    """Cost of standing up the full infrastructure (63 signed RSA zones)."""

    def build():
        return build_testbed()

    testbed = benchmark.pedantic(build, rounds=1, iterations=1)
    assert len(testbed.cases) == 63
    assert set(EXPECTED_TABLE4) == set(testbed.cases)
