#!/usr/bin/env python3
"""Section 4 of the paper: the Internet-wide scan, scaled down.

Generates a synthetic registered-domain universe calibrated to the
paper's measured misconfiguration distribution, deploys it as a
simulated Internet (virtual TLD servers, lazy hosting, broken
nameserver pools), scans every domain through a Cloudflare-profile
resolver, and prints:

* the 14-category table of Section 4.2 (per-INFO-CODE domain counts),
* the broken-nameserver concentration statistics,
* ASCII sketches of Figure 1 (per-TLD CDF) and Figure 2 (Tranco CDF).

Run:  python examples/wild_scan.py [--scale N]   (default 1:20000, fast;
      use --scale 1000 for the paper-faithful 303k-domain run, ~10 min)
"""

import argparse
import time

from repro.dns.rcode import Rcode
from repro.experiments.report import render_cdf, render_table
from repro.scan import (
    PopulationConfig,
    WildInternet,
    WildScanner,
    analyze,
    generate_population,
    pipeline_accuracy,
    tld_ratios,
    tranco_overlap,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=int, default=20_000,
                        help="population divisor (paper-faithful: 1000)")
    parser.add_argument("--seed", type=int, default=20230524)
    args = parser.parse_args()

    config = PopulationConfig(scale=args.scale, seed=args.seed)
    print(f"generating the universe at 1:{args.scale} "
          f"(~{config.total_domains:,} domains)...")
    population = generate_population(config)
    print(f"  {len(population.domains):,} domains, {len(population.tlds)} TLDs, "
          f"{len(population.broken_ns)} broken nameservers")

    print("deploying the wild Internet...")
    started = time.time()
    wild = WildInternet(population)
    print(f"  {len(wild.fabric.endpoints())} endpoints in {time.time() - started:.1f}s")

    print("scanning (A queries through the Cloudflare profile)...")
    started = time.time()
    scanner = WildScanner(wild)
    result = scanner.scan(
        progress=lambda done, total: print(f"  {done:,}/{total:,}", end="\r")
    )
    elapsed = time.time() - started
    print(f"  {len(result.records):,} domains, {result.queries_sent:,} fabric "
          f"queries in {elapsed:.1f}s ({len(result.records) / elapsed:,.0f} dom/s)")

    accuracy, wrong = pipeline_accuracy(result)
    print(f"  ground-truth pipeline accuracy: {accuracy * 100:.2f}% "
          f"({len(wrong)} deviations)\n")

    analysis = analyze(result, population)
    rows = [
        (c.code, c.description, f"{c.domains:,}", c.sample_extra_text[:44])
        for c in analysis.categories
    ]
    print(render_table(("code", "category", "domains", "sample EXTRA-TEXT"), rows,
                       title="-- Section 4.2: EDE categories --"))
    print(f"\nEDE-triggering domains: {analysis.ede_domains:,} of "
          f"{analysis.total_domains:,} ({analysis.ede_rate * 100:.2f}%; paper 5.8%)")
    print(f"lame delegation |22 u 23|: {analysis.lame_union:,} "
          f"(paper: 14.8M at full scale)")

    ns = analysis.nameservers
    print(f"\n-- nameserver concentration --")
    print(f"unique broken nameservers: {ns.unique_broken:,} {dict(sorted(ns.by_kind.items()))}")
    print(f"servers hosting >{ns.mega_threshold} domains: {ns.mega_servers} (paper: 6 over 100k)")
    print(f"fixing the top {ns.fix_count_for_81pct} "
          f"({ns.fix_fraction_for_81pct * 100:.1f}% of the pool) covers 81% of "
          f"lame domains (paper: 20k of 293k = 6.8%)")

    ratios = tld_ratios(result, population)

    def cdf(values):
        ordered = sorted(values)
        return [(v * 100, (i + 1) / len(ordered)) for i, v in enumerate(ordered)]

    print("\n-- Figure 1: ratio of EDE domains per TLD --")
    print(render_cdf(cdf(ratios.gtld_ratios), title="gTLDs",
                     xlabel="ratio of domains (%)"))
    print(render_cdf(cdf(ratios.cctld_ratios), title="ccTLDs",
                     xlabel="ratio of domains (%)"))
    print(f"zero-EDE TLDs: {ratios.zero_fraction(cc=False) * 100:.0f}% of gTLDs, "
          f"{ratios.zero_fraction(cc=True) * 100:.0f}% of ccTLDs "
          f"(paper: 38% / 4% at full scale)")

    overlap = tranco_overlap(result)
    print("\n-- Figure 2: EDE domains across the Tranco-like top list --")
    print(render_cdf(overlap.rank_cdf(), title="CDF over ranks",
                     xlabel="normalized rank"))
    noerror = overlap.noerror_overlap
    print(f"overlap: {overlap.overlap} of {overlap.tranco_size} ranked domains, "
          f"{noerror} of them still NOERROR (paper: 22.1k / 1M, 12.2k NOERROR)")


if __name__ == "__main__":
    main()
