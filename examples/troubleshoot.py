#!/usr/bin/env python3
"""EDE-powered troubleshooting, the way the paper's conclusion envisions.

A mini "dig + diagnosis" tool: give it one of the testbed's subdomain
labels (e.g. ``rrsig-exp-all``, ``v6-localhost``, ``allow-query-none``),
and it queries the domain through every vendor profile, decodes the
extended errors, and prints a human diagnosis of the root cause —
no DNSViz, no external services, just RFC 8914 data from the responses.

Run:  python examples/troubleshoot.py rrsig-exp-all
      python examples/troubleshoot.py --list
"""

import argparse
import sys

from repro.dns.ede import EDE_CATEGORIES, EdeCategory, EdeCode, describe
from repro.dns.rcode import Rcode
from repro.dns.types import RdataType
from repro.testbed import ALL_CASES, CASES_BY_LABEL, build_testbed, make_resolvers

#: What an operator should *do* for each category of INFO-CODE.
ADVICE = {
    EdeCategory.DNSSEC_VALIDATION: (
        "DNSSEC chain problem: re-run your signer, check key rollover state,"
        " and compare the DS at the parent with the DNSKEYs at the child."
    ),
    EdeCategory.CACHING: (
        "The resolver answered from cache (possibly stale); the authoritative"
        " servers were not freshly consulted. Check their availability."
    ),
    EdeCategory.RESOLVER_POLICY: (
        "The resolver applied local policy (blocking/filtering); this is not"
        " a misconfiguration of the domain itself."
    ),
    EdeCategory.SOFTWARE_OPERATION: (
        "The resolver could not complete the resolution: check that every"
        " delegated nameserver is reachable and answers authoritatively."
    ),
    EdeCategory.OTHER: "Unusual condition; inspect the EXTRA-TEXT for details.",
}


def diagnose(codes: tuple[int, ...]) -> str:
    if not codes:
        return "no extended errors: nothing to diagnose from this vendor"
    categories = []
    for code in codes:
        try:
            category = EDE_CATEGORIES[EdeCode(code)]
        except ValueError:
            category = EdeCategory.OTHER
        if category not in categories:
            categories.append(category)
    return " | ".join(ADVICE[c] for c in categories)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("label", nargs="?", help="testbed subdomain label")
    parser.add_argument("--list", action="store_true", help="list all 63 labels")
    args = parser.parse_args()

    if args.list or not args.label:
        for case in ALL_CASES:
            print(f"{case.label:28s} {case.description}")
        return 0

    case = CASES_BY_LABEL.get(args.label)
    if case is None:
        print(f"unknown label {args.label!r}; try --list", file=sys.stderr)
        return 1

    print(f"domain: {case.subdomain}")
    print(f"configured fault: {case.description}\n")
    print("building infrastructure...")
    testbed = build_testbed()
    resolvers = make_resolvers(testbed)
    deployed = testbed.cases[case.label]

    print(f"querying {deployed.query_name} A through all vendors:\n")
    seen_codes: set[int] = set()
    for name, resolver in resolvers.items():
        response = resolver.resolve(deployed.query_name, RdataType.A)
        seen_codes.update(response.ede_codes)
        codes = ", ".join(
            f"{o.info_code} ({o.description})"
            + (f' "{o.extra_text}"' if o.extra_text else "")
            for o in response.extended_errors
        ) or "none"
        print(f"  {resolver.profile.name:26s} rcode={Rcode(response.rcode).name:8s} EDE: {codes}")

    print("\n-- diagnosis --")
    print(diagnose(tuple(sorted(seen_codes))))
    return 0


if __name__ == "__main__":
    sys.exit(main())
