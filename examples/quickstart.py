#!/usr/bin/env python3
"""Quickstart: build a broken zone, resolve it, read the Extended DNS Errors.

This walks the library's core loop end to end in ~60 lines:

1. build a simulated Internet (root -> com -> example zone) where the
   example zone's RRSIGs are expired;
2. attach two vendor-profile resolvers (Unbound and Cloudflare) to it;
3. resolve the domain and print the RCODE and the RFC 8914 extended
   errors each vendor returns.

Run:  python examples/quickstart.py
"""

from repro.dns import A, NS, Name, RRset, Rcode, RdataType
from repro.dnssec.ds import make_ds
from repro.net import NetworkFabric
from repro.resolver import CLOUDFLARE, UNBOUND, RecursiveResolver
from repro.server import AuthoritativeServer
from repro.zones import Window, ZoneBuilder, ZoneMutation

NOW = 1_684_108_800  # 2023-05-15, the paper's measurement window
ROOT_IP, COM_IP, EXAMPLE_IP = "198.41.0.4", "192.5.6.30", "185.199.1.1"


def build_zone(origin: str, server_ip: str, mutation: ZoneMutation, fabric, extra=()):
    """Build one signed zone and host it on the fabric."""
    origin_name = Name.from_text(origin)
    builder = ZoneBuilder(origin_name, now=NOW, mutation=mutation)
    ns_name = Name.from_text("ns1", origin=origin_name)
    builder.add(RRset.of(origin_name, RdataType.NS, NS(target=ns_name)))
    builder.add(RRset.of(ns_name, RdataType.A, A(address=server_ip)))
    builder.ensure_soa()
    for rrset in extra:
        builder.add(rrset)
    built = builder.build()
    server = AuthoritativeServer(name=f"ns1.{origin}")
    server.add_zone(built.zone)
    fabric.register(server_ip, server)
    return built


def main() -> None:
    fabric = NetworkFabric()
    algo = ZoneMutation(algorithm=13)  # fast simulated ECDSA P-256

    # The broken leaf: every RRSIG in the zone is expired.
    example = build_zone(
        "broken-example.com.", EXAMPLE_IP,
        ZoneMutation(algorithm=13, window_all=Window.EXPIRED), fabric,
        extra=[RRset.of(Name.from_text("broken-example.com."), RdataType.A,
                        A(address="93.184.216.34"))],
    )

    # A healthy com zone delegating to it (with the child's DS)...
    example_name = Name.from_text("broken-example.com.")
    com = build_zone(
        "com.", COM_IP, algo, fabric,
        extra=[
            RRset.of(example_name, RdataType.NS,
                     NS(target=Name.from_text("ns1.broken-example.com."))),
            RRset.of(Name.from_text("ns1.broken-example.com."), RdataType.A,
                     A(address=EXAMPLE_IP)),
            *(RRset.of(example_name, RdataType.DS, ds) for ds in example.ds_rdatas),
        ],
    )

    # ...and a root zone delegating to com.
    root = build_zone(
        ".", ROOT_IP, algo, fabric,
        extra=[
            RRset.of(Name.from_text("com."), RdataType.NS,
                     NS(target=Name.from_text("ns.com."))),
            RRset.of(Name.from_text("ns.com."), RdataType.A, A(address=COM_IP)),
            *(RRset.of(Name.from_text("com."), RdataType.DS, ds) for ds in com.ds_rdatas),
        ],
    )
    trust_anchor = make_ds(Name.root(), root.ksk.dnskey(), 2)

    print(f"query: broken-example.com. A   (zone signatures expired)\n")
    for profile in (UNBOUND, CLOUDFLARE):
        resolver = RecursiveResolver(
            fabric=fabric, profile=profile, root_hints=[ROOT_IP],
            trust_anchors=[trust_anchor],
        )
        response = resolver.resolve("broken-example.com.", RdataType.A)
        print(f"{profile.name}:")
        print(f"  rcode: {Rcode(response.rcode).name}")
        if response.extended_errors:
            for option in response.extended_errors:
                print(f"  {option}")
        else:
            print("  (no extended errors)")
        print()


if __name__ == "__main__":
    main()
