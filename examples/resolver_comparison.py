#!/usr/bin/env python3
"""Section 3 of the paper: the 63-subdomain testbed against 7 resolvers.

Deploys ``extended-dns-errors.com`` with all 63 misconfigured children
onto a simulated Internet, queries every case through BIND, Unbound,
PowerDNS, Knot, Cloudflare, Quad9, and OpenDNS profiles, prints the full
EDE matrix (the paper's Table 4), and derives the Section 3.3 headline
statistics: which cases all systems agree on, the ~94% inconsistency
share, and the 12 unique INFO-CODEs.

Run:  python examples/resolver_comparison.py [--group N]
"""

import argparse
import time

from repro.dns.ede import describe
from repro.experiments.report import render_table
from repro.testbed import ALL_CASES, GROUP_NAMES, build_testbed, run_matrix


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--group", type=int, default=0,
        help="only print rows of one Table 2 group (1-8); 0 = all",
    )
    args = parser.parse_args()

    print("building the testbed (63 signed zones, 3 parent zones)...")
    started = time.time()
    testbed = build_testbed()
    print(f"  done in {time.time() - started:.1f}s; "
          f"{len(testbed.fabric.endpoints())} nameservers on the fabric")

    print("querying 63 cases x 7 resolver profiles...")
    started = time.time()
    matrix = run_matrix(testbed)
    print(f"  done in {time.time() - started:.1f}s\n")

    cases = [
        case for case in ALL_CASES if not args.group or case.group == args.group
    ]
    rows = []
    for case in cases:
        row = matrix.row(case.label)
        rows.append((
            case.label,
            *(",".join(map(str, row[name])) or "-" for name in matrix.profile_names),
        ))
    title = "Table 4 (live)" if not args.group else (
        f"Table 4 rows for group {args.group}: {GROUP_NAMES[args.group]}"
    )
    print(render_table(("subdomain", *matrix.profile_names), rows, title=title))

    print("\n-- Section 3.3 statistics --")
    consistent = matrix.consistent_cases()
    print(f"cases handled identically by all 7 systems: {len(consistent)}/63 "
          f"({', '.join(consistent)})")
    print(f"inconsistent share: {matrix.inconsistency_ratio() * 100:.1f}% "
          f"(paper: almost 94%)")
    unique = matrix.unique_codes()
    print(f"unique INFO-CODEs triggered: {len(unique)} -> {list(unique)}")
    print("most frequent codes:")
    for code, count in list(matrix.code_frequencies().items())[:5]:
        print(f"  {count:3d} cells  EDE {code} ({describe(code)})")
    mismatches = matrix.diff_against_paper()
    print(f"\nagreement with the published Table 4: "
          f"{441 - len(mismatches)}/441 cells")


if __name__ == "__main__":
    main()
