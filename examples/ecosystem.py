#!/usr/bin/env python3
"""The EDE ecosystem beyond the paper's measurements.

The paper's Section 2 sketches how EDE is spreading through the DNS
ecosystem: forwarders relaying codes, the Spamhaus firewall emitting
Blocked (15), the DNS Error Reporting draft building on it.  This
example wires all of those together on one fabric:

  stub client
    -> home-router FORWARDER (blocklist + stale cache, annotates EDE)
    -> Cloudflare-profile RECURSIVE resolver (validates, emits EDE,
       reports failures to the zone's monitoring AGENT via RFC 9567)
    -> the misconfigured extended-dns-errors.com testbed

then lints a broken zone offline and AXFRs a testbed zone — the whole
troubleshooting toolchain in one run.

Run:  python examples/ecosystem.py
"""

from repro.dns.name import Name
from repro.dns.rcode import Rcode
from repro.dns.rdata import A, NS
from repro.dns.rrset import RRset
from repro.dns.types import RdataType
from repro.resolver import (
    CLOUDFLARE,
    ForwardingResolver,
    LocalPolicy,
    PolicyAction,
    RecursiveResolver,
    ReportingAgent,
    StubResolver,
)
from repro.testbed import build_testbed
from repro.zones import Severity, lint_zone

RECURSIVE_IP = "192.0.9.150"
FORWARDER_IP = "192.0.9.151"
AGENT_IP = "192.0.9.152"


def main() -> None:
    print("building the testbed...")
    testbed = build_testbed()
    fabric = testbed.fabric
    now = int(fabric.clock.now())

    # -- a monitoring agent, advertised by the parent zone's server --------
    agent_domain = Name.from_text("agent.extended-dns-errors.com.")
    agent = ReportingAgent(agent_domain, fabric.clock)
    fabric.register(AGENT_IP, agent)
    parent_server = fabric._endpoints[("185.199.0.53", 53)]
    parent_server.report_agent = agent_domain
    parent_built_zone = parent_server.zones()[0]
    parent_built_zone.add(
        RRset.of(agent_domain, RdataType.NS,
                 NS(target=Name.from_text("ns1", origin=agent_domain)), ttl=300)
    )
    parent_built_zone.add(
        RRset.of(Name.from_text("ns1", origin=agent_domain), RdataType.A,
                 A(address=AGENT_IP), ttl=300)
    )

    # -- the recursive resolver (with RFC 9567 reporting enabled) -----------
    recursive = RecursiveResolver(
        fabric=fabric, profile=CLOUDFLARE,
        root_hints=testbed.root_hints, trust_anchors=testbed.trust_anchors,
        error_reporting=True,
    )
    fabric.register(RECURSIVE_IP, recursive)

    # -- the home-router forwarder with a Spamhaus-style blocklist ----------
    blocklist = LocalPolicy()
    blocklist.add("malware.example.", PolicyAction.BLOCK, reason="Malware")
    forwarder = ForwardingResolver(
        fabric=fabric, upstreams=[RECURSIVE_IP],
        annotate_forwarded=True, local_policy=blocklist,
    )
    fabric.register(FORWARDER_IP, forwarder)

    stub = StubResolver(fabric, FORWARDER_IP)

    print("\n1) blocked by the forwarder's local policy:")
    answer = stub.query("evil.malware.example.", RdataType.A)
    print(f"   rcode={Rcode(answer.rcode).name} EDE={[str(o) for o in answer.ede]}")

    print("\n2) DNSSEC-broken domain, EDE relayed and annotated:")
    answer = stub.query("rrsig-exp-all.extended-dns-errors.com.", RdataType.A)
    print(f"   rcode={Rcode(answer.rcode).name}")
    for option in answer.ede:
        print(f"   {option}")

    print("\n3) the zone's monitoring agent heard about it (RFC 9567):")
    for record in agent.reports:
        print(f"   report: {record.qname} type {record.rdtype} "
              f"info-code {record.info_code} from {record.reporter}")

    print("\n4) the operator lints the same zone offline:")
    deployed = testbed.cases["rrsig-exp-all"]
    findings = lint_zone(
        deployed.built.zone, now=now, parent_ds=deployed.built.ds_rdatas
    )
    for finding in findings:
        if finding.severity is Severity.ERROR:
            print(f"   {finding}")

    print("\n5) and pulls the valid zone by AXFR for comparison:")
    from repro.resolver import axfr
    from repro.server.acl import Acl

    valid = testbed.cases["valid"]
    server = fabric._endpoints[(valid.server_address, 53)]
    server.allow_transfer = Acl.any()
    zone = axfr(fabric, valid.server_address, str(valid.zone_name))
    clean = lint_zone(zone, now=now, parent_ds=valid.built.ds_rdatas)
    errors = [f for f in clean if f.severity is Severity.ERROR]
    print(f"   transferred {len(zone)} RRsets; lint errors: {len(errors)}")


if __name__ == "__main__":
    main()
